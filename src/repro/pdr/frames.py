"""The IC3/PDR frame sequence, hosted on one persistent incremental solver.

A :class:`FrameSequence` maintains the over-approximating frames
F_0 ⊆ F_1 ⊆ … ⊆ F_k of IC3/PDR (Bradley VMCAI'11, Eén/Mishchenko/Brayton
FMCAD'11) in *delta encoding*: every blocked cube is stored at exactly one
level j, and the state set F_i is described by the clauses of all levels
≥ i.  Monotone containment is therefore structural — it never has to be
re-established by a containment check.

Unlike the interpolation engines, which re-encode a longer unrolling for
every outer bound, all PDR reasoning happens over **one** copy of the
transition relation T(V⁰, V¹) inside **one**
:class:`~repro.sat.solver.CdclSolver` for the whole run:

* each frame level owns an activation-literal clause group
  (:meth:`~repro.sat.solver.CdclSolver.new_group`); the clause ¬s of a cube
  blocked at level j is added to group j, and "F_i holds" is expressed by
  assuming the activation literals of levels i..k;
* pushing a cube from level j to j+1 adds the clause to group j+1 and
  leaves a stale (subsumed) copy behind in group j; once a level's stale
  copies outnumber its live clauses the whole group is **released**
  (:meth:`~repro.sat.solver.CdclSolver.release_group`) and rebuilt from the
  live clauses only, so the solver-side clause count stays proportional to
  the frame contents — the same delta-not-total accounting that
  :mod:`repro.bmc.incremental` established for BMC deepening;
* per-query obligations (the ¬s term of a relative-induction check, the
  ¬t′ term of a lifting check) live in throwaway groups released right
  after the query.

Learned clauses, VSIDS activities and saved phases persist across every
query of the run, which is where PDR's thousands of shallow SAT calls
recoup their cost.

The solver hook
---------------
Every query is routed through a caller-supplied ``solve(solver,
assumptions)`` callable so the engine can thread resource budgets and
:class:`~repro.core.result.EngineStats` accounting through the subsystem
without the subsystem depending on the engine layer.  The default hook
solves without a budget, which keeps :class:`FrameSequence` usable
standalone (see ``examples/pdr_proofs.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..aig.model import Model, StateCube
from ..bmc.unroll import Unroller
from ..sat.solver import CdclSolver
from ..sat.types import SatResult

__all__ = ["FrameSequence", "Cube"]

#: A cube over latch variables: latch AIG variable -> polarity.
Cube = Dict[int, bool]

#: ``solve(solver, assumptions) -> SatResult`` hook type.
SolveHook = Callable[[CdclSolver, Sequence[int]], SatResult]


def _default_solve(solver: CdclSolver, assumptions: Sequence[int]) -> SatResult:
    return solver.solve(assumptions=list(assumptions))


class FrameSequence:
    """Relative-inductive clause sets F_0..F_k over one persistent solver.

    ``F_0`` is the initial-state predicate S₀ (its unit cubes live in the
    level-0 group); higher levels start empty (F_i = ⊤) and are
    strengthened by :meth:`add_blocked_cube`.
    """

    def __init__(self, model: Model, solver: Optional[CdclSolver] = None,
                 solve: Optional[SolveHook] = None, tracer=None) -> None:
        from ..obs.tracer import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        if solver is None:
            solver = CdclSolver(proof_logging=False)
        if solver.proof_logging:
            raise ValueError("PDR frames are incompatible with proof logging: "
                             "frame clauses live under activation literals")
        self.model = model
        self.solver = solver
        self._solve: SolveHook = solve or _default_solve
        self.unroller = Unroller(model, solver)
        # One transition copy T(V0, V1).  Invariant constraints hold
        # permanently at step 0 — every state a query reasons about is a
        # constraint-satisfying one — but at step 1 only under an
        # assumption used by the *transition* queries: a bad-state query
        # must not demand that the violating state have a
        # constraint-satisfying successor (the trace ends there).
        self.unroller.add_transition(0, partition=None, include_constraints=False)
        self._transition_assumptions: List[int] = []
        if model.constraints:
            self.unroller.assert_constraints_at(0, partition=None)
            group = self.solver.new_group()
            for lit in self.unroller.constraint_literals(1, partition=None):
                self.solver.add_clause([lit], group=group)
            self._transition_assumptions.append(self.solver.group_literal(group))
        self._bad0 = self.unroller.bad_literal(0, partition=None)
        #: S₀ as a (partial) cube: uninitialised latches are unconstrained.
        self._init_cube: Cube = {latch.var: bool(latch.init)
                                 for latch in model.latches
                                 if latch.init is not None}
        # Cube lifting shrinks a SAT witness to the assumptions an UNSAT core
        # retains; with invariant constraints in the formula the shrunk cube
        # no longer guarantees that *every* contained state satisfies them,
        # which trace reconstruction relies on — so lifting is disabled and
        # obligations carry full states instead.
        self._lifting = not model.constraints
        #: Per-level activation group handle (index 0 = the S₀ group).
        self._groups: List[int] = []
        #: Per-level live blocked cubes (delta encoding; index 0 unused).
        self._levels: List[List[StateCube]] = []
        #: Set mirror of each level's live cubes for O(1) duplicate checks.
        self._level_sets: List[set] = []
        #: Per-level count of stale solver-side copies (pushed-away cubes).
        self._stale: List[int] = []
        #: Cumulative number of cube pushes (mirrored into EngineStats).
        self.clauses_pushed = 0
        #: Number of frame groups released and rebuilt to shed stale copies.
        self.groups_rebuilt = 0
        self._push_level()
        for var, value in sorted(self._init_cube.items()):
            cnf = self.unroller.latch_cnf_var(0, var)
            self.solver.add_clause([cnf if value else -cnf],
                                   group=self._groups[0])

    # ------------------------------------------------------------------ #
    # Frame management
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """The topmost frame index."""
        return len(self._levels) - 1

    def _push_level(self) -> None:
        self._groups.append(self.solver.new_group())
        self._levels.append([])
        self._level_sets.append(set())
        self._stale.append(0)

    def add_level(self) -> int:
        """Open frame F_{k+1} (initially ⊤); returns the new k."""
        self._push_level()
        return self.k

    def level_cubes(self, level: int) -> List[StateCube]:
        """The live cubes blocked exactly at ``level`` (delta encoding)."""
        return list(self._levels[level])

    def frame_cubes(self, level: int) -> List[StateCube]:
        """All cubes excluded from F_level: the union of levels ≥ level."""
        cubes: List[StateCube] = []
        for j in range(max(level, 1), self.k + 1):
            cubes.extend(self._levels[j])
        return cubes

    def num_clauses(self) -> int:
        """Total number of live frame clauses across all levels."""
        return sum(len(cubes) for cubes in self._levels)

    def activation_assumptions(self, level: int) -> List[int]:
        """Assumption literals expressing membership in F_level."""
        return [self.solver.group_literal(group)
                for group in self._groups[level:]]

    # ------------------------------------------------------------------ #
    # Cube plumbing
    # ------------------------------------------------------------------ #
    def _cube_lits(self, cube: Mapping[int, bool], frame: int) -> List[int]:
        """CNF literals of a latch cube at time frame 0 (now) or 1 (next)."""
        lits = []
        for var, value in sorted(cube.items()):
            cnf = self.unroller.latch_cnf_var(frame, var)
            lits.append(cnf if value else -cnf)
        return lits

    def _input_lits(self, inputs: Mapping[int, bool]) -> List[int]:
        """CNF literals of a primary-input valuation at time frame 0."""
        lits = []
        for var, value in sorted(inputs.items()):
            cnf = self.unroller.input_cnf_var(0, var)
            lits.append(cnf if value else -cnf)
        return lits

    def _model_witness(self) -> Tuple[Cube, Dict[int, bool]]:
        """Project the SAT model onto (latch state, primary inputs) at step 0.

        One ``solver.model()`` call serves both projections — the model is
        a fresh copy over every CNF variable, and witnesses are extracted
        on each of PDR's thousands of SAT answers.
        """
        values = self.solver.model()
        state = {var: values.get(self.unroller.latch_cnf_var(0, var), False)
                 for var in self.model.latch_vars}
        inputs = {var: values.get(self.unroller.input_cnf_var(0, var), False)
                  for var in self.model.input_vars}
        return state, inputs

    def intersects_initial(self, cube: Mapping[int, bool]) -> bool:
        """Whether the cube contains an initial state (syntactic: S₀ is a cube)."""
        return all(self._init_cube.get(var, value) == value
                   for var, value in cube.items())

    def initial_state_in(self, cube: Mapping[int, bool]) -> Cube:
        """A concrete initial state inside ``cube`` (which must intersect S₀)."""
        state = dict(self._init_cube)
        for var in self.model.latch_vars:
            if var not in state:
                state[var] = bool(cube.get(var, False))
        return state

    def _separator_literal(self, cube: Mapping[int, bool]) -> Tuple[int, bool]:
        """A literal of ``cube`` that conflicts with S₀ (initiation witness)."""
        for var, value in sorted(cube.items()):
            init = self._init_cube.get(var)
            if init is not None and init != value:
                return var, value
        raise ValueError("cube intersects the initial states; "
                         "no separating literal exists")

    # ------------------------------------------------------------------ #
    # Queries (all on the one persistent solver)
    # ------------------------------------------------------------------ #
    def bad_state(self, level: int) -> Optional[Tuple[Cube, Dict[int, bool]]]:
        """SAT?(F_level ∧ ¬p): a property-violating state still inside F_level.

        Returns ``(state, inputs)`` — the full latch valuation and the
        primary inputs exposing the violation — or ``None`` on UNSAT.
        """
        result = self._solve(self.solver,
                             self.activation_assumptions(level) + [self._bad0])
        if result is SatResult.SAT:
            return self._model_witness()
        if result is SatResult.UNSAT:
            return None
        # UNKNOWN must not read as "no bad state" — that would let a
        # budget-exhausted query masquerade as part of a PASS proof.
        raise RuntimeError("bad-state query returned no answer; "
                           "the solve hook must raise on budget exhaustion")

    def check_obligation(self, cube: Mapping[int, bool], level: int):
        """Decide whether ``cube`` is inductive relative to F_{level-1}.

        The query is SAT?(F_{level-1} ∧ ¬s ∧ T ∧ s′) with the ¬s clause in a
        throwaway activation group and s′ passed as assumptions.  Returns

        * ``("blocked", core)`` on UNSAT — ``core ⊆ cube`` is the sub-cube
          the failed-assumption set retains, already repaired to satisfy
          initiation (S₀ ⇒ ¬core);
        * ``("cti", state, inputs)`` on SAT — a predecessor state in
          F_{level-1} (full valuation) and the inputs driving it into
          ``cube``.
        """
        assumptions = (self.activation_assumptions(level - 1)
                       + self._transition_assumptions)
        next_lits = self._cube_lits(cube, 1)
        temp = self.solver.new_group()
        try:
            self.solver.add_clause([-lit for lit in self._cube_lits(cube, 0)],
                                   group=temp)
            result = self._solve(
                self.solver,
                assumptions + [self.solver.group_literal(temp)] + next_lits)
            if result is SatResult.SAT:
                state, inputs = self._model_witness()
                return ("cti", state, inputs)
            if result is not SatResult.UNSAT:
                raise RuntimeError("relative-induction query returned no "
                                   "answer; the solve hook must raise on "
                                   "budget exhaustion")
            return ("blocked", self._core_cube(cube, next_lits))
        finally:
            self.solver.release_group(temp)

    def _core_cube(self, cube: Mapping[int, bool], next_lits: List[int]) -> Cube:
        """Shrink a blocked cube to the literals its UNSAT answer used."""
        conflict = set(self.solver.conflict_assumptions())
        core: Cube = {}
        for lit, (var, value) in zip(next_lits, sorted(cube.items())):
            if lit in conflict:
                core[var] = value
        if not core or self.intersects_initial(core):
            # The core lost every literal separating the cube from S₀; put
            # one back (the original cube never intersects S₀).
            var, value = self._separator_literal(cube)
            core[var] = value
        return core

    def lift_bad(self, state: Cube, inputs: Mapping[int, bool]) -> Cube:
        """Shrink a bad state to a cube all of whose states violate p.

        UNSAT?(state ∧ inputs ∧ p) must hold by construction; the failed
        assumptions projected onto the latch literals are the lifted cube.
        """
        if not self._lifting:
            return dict(state)
        state_lits = self._cube_lits(state, 0)
        result = self._solve(
            self.solver,
            state_lits + self._input_lits(inputs) + [-self._bad0])
        return self._lifted_from_core(state, state_lits, result)

    def lift_predecessor(self, state: Cube, inputs: Mapping[int, bool],
                         successor: Mapping[int, bool]) -> Cube:
        """Shrink a predecessor state to a cube that still forces the step.

        UNSAT?(state ∧ inputs ∧ T ∧ ¬successor′) holds by construction, so
        every state of the lifted cube reaches ``successor`` under the same
        inputs — the guarantee counterexample reconstruction relies on.
        """
        if not self._lifting:
            return dict(state)
        state_lits = self._cube_lits(state, 0)
        temp = self.solver.new_group()
        try:
            self.solver.add_clause(
                [-lit for lit in self._cube_lits(successor, 1)], group=temp)
            result = self._solve(
                self.solver,
                state_lits + self._input_lits(inputs)
                + [self.solver.group_literal(temp)])
            return self._lifted_from_core(state, state_lits, result)
        finally:
            self.solver.release_group(temp)

    def _lifted_from_core(self, state: Cube, state_lits: List[int],
                          result: SatResult) -> Cube:
        if result is not SatResult.UNSAT:  # pragma: no cover - defensive
            raise RuntimeError("lifting query was satisfiable; the witness "
                               "state does not force its transition")
        conflict = set(self.solver.conflict_assumptions())
        lifted = {var: value
                  for lit, (var, value) in zip(state_lits, sorted(state.items()))
                  if lit in conflict}
        return lifted if lifted else dict(state)

    # ------------------------------------------------------------------ #
    # Strengthening and pushing
    # ------------------------------------------------------------------ #
    def add_blocked_cube(self, cube: Mapping[int, bool], level: int) -> bool:
        """Block ``cube`` at ``level``: add the clause ¬cube to F_1..F_level.

        Returns ``False`` when the cube is already blocked at this or a
        higher level (the solver-side clause would be subsumed).
        """
        if not 1 <= level <= self.k:
            raise ValueError(f"level {level} outside 1..{self.k}")
        frozen = StateCube.from_dict(cube)
        if any(frozen in self._level_sets[j]
               for j in range(level, self.k + 1)):
            return False
        self.solver.add_clause([-lit for lit in self._cube_lits(cube, 0)],
                               group=self._groups[level])
        self._levels[level].append(frozen)
        self._level_sets[level].add(frozen)
        return True

    def propagate(self) -> Optional[int]:
        """Push clauses forward (Eén et al.'s propagation phase).

        A cube at level j moves to j+1 when F_j ∧ T ∧ s′ is UNSAT.  Returns
        the fixpoint level — the first j < k whose live set drains, making
        F_j = F_{j+1} an inductive invariant — or ``None``.
        """
        for level in range(1, self.k):
            kept: List[StateCube] = []
            pushed: List[StateCube] = []
            for cube in self._levels[level]:
                result = self._solve(
                    self.solver,
                    self.activation_assumptions(level)
                    + self._transition_assumptions
                    + self._cube_lits(cube.as_dict(), 1))
                (pushed if result is SatResult.UNSAT else kept).append(cube)
            if pushed:
                self._levels[level] = kept
                self._level_sets[level] = set(kept)
                self._stale[level] += len(pushed)
                self.clauses_pushed += len(pushed)
                for cube in pushed:
                    self.add_blocked_cube(cube.as_dict(), level + 1)
            if not kept:
                return level
            self._maybe_rebuild_group(level)
        return None

    def _maybe_rebuild_group(self, level: int) -> None:
        """Release a group whose stale (pushed-away) copies dominate it.

        Pushing leaves the old clause behind in the source group (it is
        subsumed by the copy one level up, so queries stay correct); once
        the stale copies outnumber the live clauses the group is released —
        retracting every stale copy at once — and re-created from the live
        set.  The threshold keeps the rebuild cost amortised O(1) per push
        and the solver-side clause count within 2× of the live count.
        """
        if self._stale[level] <= len(self._levels[level]):
            return
        self.solver.release_group(self._groups[level])
        self._groups[level] = self.solver.new_group()
        for cube in self._levels[level]:
            self.solver.add_clause(
                [-lit for lit in self._cube_lits(cube.as_dict(), 0)],
                group=self._groups[level])
        self._stale[level] = 0
        self.groups_rebuilt += 1
        if self.tracer.enabled:
            self.tracer.point("frame_rebuild", level=level,
                              live=len(self._levels[level]))

    def frame_is_inductive(self, level: int) -> bool:
        """Diagnostic: is F_level an inductive invariant proving the property?

        Checks the three certificate conditions — S₀ ⇒ F_level (syntactic:
        every blocked cube excludes the initial cube), F_level ∧ ¬p UNSAT,
        and F_level ∧ T ⇒ F_level′ (one push query per clause).  After
        :meth:`propagate` reports a fixpoint at j, ``frame_is_inductive(j)``
        must hold — the test-suite uses this to audit PASS answers.
        """
        if any(self.intersects_initial(cube.as_dict())
               for cube in self.frame_cubes(level)):
            return False
        if self.bad_state(level) is not None:
            return False
        for cube in self.frame_cubes(level):
            result = self._solve(
                self.solver,
                self.activation_assumptions(level)
                + self._transition_assumptions
                + self._cube_lits(cube.as_dict(), 1))
            if result is not SatResult.UNSAT:
                return False
        return True
