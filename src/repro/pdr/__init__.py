"""IC3/PDR: property-directed reachability without unrolling.

The subsystem behind :class:`~repro.core.pdr_engine.PdrEngine` — a
structurally different prover from the interpolation engines: instead of
refuting ever-deeper BMC unrollings, it strengthens a sequence of
relative-inductive frames F_0..F_k over a *single* copy of the transition
relation, answering thousands of shallow SAT queries on one persistent
incremental solver.

* :class:`FrameSequence` — the frames, their per-level activation-literal
  clause groups, and every SAT query (bad-state, relative induction, cube
  lifting, clause pushing);
* :class:`ProofObligation` / :class:`ObligationQueue` — the backward
  counterexample search;
* :func:`generalize` — inductive generalization by literal dropping.
"""

from .frames import Cube, FrameSequence
from .generalize import generalize
from .obligations import ObligationQueue, ProofObligation

__all__ = [
    "Cube",
    "FrameSequence",
    "generalize",
    "ObligationQueue",
    "ProofObligation",
]
