"""Inductive generalization: drop literals while the cube stays blocked.

Blocking the exact cube a SAT witness produced excludes a single corner of
the state space per clause; PDR's convergence comes from *generalizing*
each blocked cube into the smallest sub-cube that is still inductive
relative to its frame, so one clause cuts away an exponentially larger
region.

The procedure here is the standard literal-dropping loop (a light version
of Bradley's MIC): try the cube minus one literal, keep the reduction when
the relative-induction query stays UNSAT — harvesting the query's
failed-assumption core, which often removes several more literals at once —
and put the literal back otherwise.  Dropping is attempted once per
literal; *failed* attempts consume a configurable retry budget
(``EngineOptions.pdr_gen_budget``) so a stubborn cube cannot soak up an
unbounded number of SAT calls.

Initiation (S₀ ⇒ ¬cube) is preserved throughout: candidates that would
swallow an initial state are skipped syntactically (S₀ is a cube, so the
check is free), and the cores returned by
:meth:`~repro.pdr.frames.FrameSequence.check_obligation` are already
initiation-repaired.
"""

from __future__ import annotations

from typing import Mapping

from .frames import Cube, FrameSequence

__all__ = ["generalize"]


def generalize(frames: FrameSequence, cube: Mapping[int, bool], level: int,
               budget: int) -> Cube:
    """Shrink a relatively-inductive ``cube`` at ``level`` by literal dropping.

    ``cube`` must already be blocked at ``level`` (i.e. inductive relative
    to F_{level-1}); the result is a sub-cube with the same property.
    ``budget`` bounds the number of *unsuccessful* drop attempts (each one
    is a wasted SAT query); successful drops are free since every one
    strictly shrinks the cube.
    """
    result: Cube = dict(cube)
    retries = budget
    for var, _ in sorted(cube.items()):
        if len(result) <= 1:
            break
        if retries <= 0:
            break
        if var not in result:
            continue  # already removed by an earlier core
        candidate = {v: b for v, b in result.items() if v != var}
        if frames.intersects_initial(candidate):
            continue  # dropping this literal would swallow an initial state
        answer = frames.check_obligation(candidate, level)
        if answer[0] == "blocked":
            result = answer[1]
        else:
            retries -= 1
    return result
