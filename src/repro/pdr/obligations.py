"""Proof obligations and their priority queue.

A proof obligation ``(s, i)`` records that the cube ``s`` can reach a
property violation and must be excluded from frame F_i (or be shown
reachable, yielding a counterexample).  Obligations form a backward chain
from the initial states towards the bad cube: each one keeps the concrete
witness state and the input valuation that drives any state of its cube
into the successor obligation's cube, so a completed chain converts
directly into a replayable :class:`~repro.bmc.cex.Trace`.

The queue orders obligations by frame level (lowest first, ties broken
FIFO): handling the shallowest obligation first is what lets PDR find
counterexamples without ever unrolling, and re-enqueueing a blocked
obligation one level up keeps the search for deeper counterexamples alive
within the current frame count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["ProofObligation", "ObligationQueue"]


@dataclass
class ProofObligation:
    """One step of a potential counterexample, pending at ``level``.

    Attributes
    ----------
    cube:
        The (lifted) latch cube to block.  Every state of the cube reaches
        the successor obligation's cube under ``inputs`` (or violates the
        property directly, for the chain's last obligation).
    level:
        Frame index the cube must be excluded from.
    state:
        The full witness state the SAT model produced (used to seed the
        counterexample trace).
    inputs:
        Primary-input valuation for this step.
    succ:
        The obligation this one is a predecessor of (``None`` for the bad
        cube at the top of the chain).
    """

    cube: Dict[int, bool]
    level: int
    state: Dict[int, bool]
    inputs: Dict[int, bool]
    succ: Optional["ProofObligation"] = None

    def chain(self) -> List["ProofObligation"]:
        """The obligation chain from this cube to the bad cube."""
        links: List[ProofObligation] = []
        node: Optional[ProofObligation] = self
        while node is not None:
            links.append(node)
            node = node.succ
        return links

    @property
    def steps_to_bad(self) -> int:
        """Number of transitions from this cube to the property violation."""
        return len(self.chain()) - 1

    def at_level(self, level: int) -> "ProofObligation":
        """A copy of this obligation rescheduled at another frame level."""
        return ProofObligation(cube=self.cube, level=level, state=self.state,
                               inputs=self.inputs, succ=self.succ)


class ObligationQueue:
    """Min-priority queue over obligations, keyed by frame level."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0

    def push(self, obligation: ProofObligation) -> None:
        heapq.heappush(self._heap, (obligation.level, self._seq, obligation))
        self._seq = self._seq + 1

    def pop(self) -> ProofObligation:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
