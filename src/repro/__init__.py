"""repro — a reproduction of "Interpolation Sequences Revisited" (DATE 2011).

The package provides, in pure Python:

* an And-Inverter-Graph circuit substrate with AIGER I/O (:mod:`repro.aig`);
* a proof-logging CDCL SAT solver (:mod:`repro.sat`) and Tseitin encoding
  (:mod:`repro.cnf`);
* Craig interpolation and interpolation sequences over resolution proofs
  (:mod:`repro.itp`);
* bounded model checking with the bound-k / exact-k / assume-k check
  formulations (:mod:`repro.bmc`);
* an *incremental* solving subsystem: clause additions between solver
  calls, activation-literal clause groups
  (:meth:`CdclSolver.new_group <repro.sat.solver.CdclSolver.new_group>` /
  :meth:`release_group <repro.sat.solver.CdclSolver.release_group>`),
  learned-clause / VSIDS / phase persistence across calls, per-call
  :class:`~repro.sat.types.SolverStats` snapshots, and
  :class:`~repro.bmc.incremental.IncrementalUnroller` — one persistent
  solver across all BMC unrolling depths, used by :class:`BmcEngine` (its
  default mode) and by every engine's counterexample search;
* the four unbounded model-checking engines compared in the paper —
  standard interpolation, interpolation sequences, serial interpolation
  sequences and interpolation sequences with counterexample-based
  abstraction (:mod:`repro.core`, :mod:`repro.abstraction`) — plus an
  IC3/PDR engine (:mod:`repro.pdr`), the portfolio's structurally
  different prover: unbounded proofs from relative-inductive frames on a
  single persistent solver, with no unrolling at all;
* a model-preprocessing pipeline (:mod:`repro.preprocess`): composable
  passes — cone-of-influence reduction, ternary-simulation stuck-latch
  sweeping, structural rewriting, CNF-level bounded variable elimination —
  run by every engine before any encoding, with counterexample lift-back
  to the original variables;
* a BDD engine for exact reachability and circuit diameters
  (:mod:`repro.bdd`);
* synthetic benchmark circuits and the experiment harness regenerating the
  paper's Table I, Fig. 6 and Fig. 7 (:mod:`repro.circuits`,
  :mod:`repro.harness`);
* a structured-tracing subsystem (:mod:`repro.obs`): nested span events
  with deterministic SAT counter deltas, JSONL sinks, per-module loggers
  under the ``repro`` hierarchy, and the ``python -m repro.obs.report``
  trace analyser.

Following library convention, the ``repro`` logger hierarchy carries a
``NullHandler``: the package never configures logging on import, and the
CLI's ``-v``/``-vv`` flags (or :func:`repro.obs.logcfg.configure_logging`)
opt into stderr output.

Quickstart
----------
>>> from repro.circuits import token_ring
>>> from repro.core import run_engine
>>> result = run_engine("itpseq", token_ring(4))
>>> result.verdict.value
'pass'
"""

import logging as _logging

_logging.getLogger("repro").addHandler(_logging.NullHandler())

from .aig import Aig, AigBuilder, Model, read_aag, write_aag  # noqa: E402
from .bmc import BmcCheckKind, BmcEngine, IncrementalUnroller, Trace
from .preprocess import ModelMap, Pipeline, build_pipeline
from .core import (
    ENGINES,
    EngineOptions,
    ItpEngine,
    ItpSeqCbaEngine,
    ItpSeqEngine,
    PdrEngine,
    Portfolio,
    SerialItpSeqEngine,
    Verdict,
    VerificationResult,
    run_engine,
)
from .sat import CdclSolver, SatResult

__version__ = "0.1.0"

__all__ = [
    "Aig",
    "AigBuilder",
    "Model",
    "read_aag",
    "write_aag",
    "BmcCheckKind",
    "BmcEngine",
    "IncrementalUnroller",
    "Trace",
    "ModelMap",
    "Pipeline",
    "build_pipeline",
    "ENGINES",
    "EngineOptions",
    "ItpEngine",
    "ItpSeqCbaEngine",
    "ItpSeqEngine",
    "PdrEngine",
    "Portfolio",
    "SerialItpSeqEngine",
    "Verdict",
    "VerificationResult",
    "run_engine",
    "CdclSolver",
    "SatResult",
    "__version__",
]
