"""A proof-logging CDCL SAT solver.

This is the substrate the whole reproduction rests on: ``pysat`` does not
expose resolution proofs or interpolants, so the solver is written from
scratch.  It implements the standard modern CDCL loop:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with clause learning;
* VSIDS-style variable activities with exponential decay and phase saving;
* Luby restarts;
* learned-clause database reduction driven by clause activities;
* solving under assumptions (MiniSAT-style) for incremental queries;
* a first-class *incremental* interface: clauses may be added between
  :meth:`~CdclSolver.solve` calls (watches are repaired against the current
  level-0 assignment on the fly), learned clauses, VSIDS activities and
  saved phases all survive across calls, activation-literal clause groups
  (:meth:`~CdclSolver.new_group` / :meth:`~CdclSolver.release_group`) allow
  retractable constraints, and every call leaves a per-call
  :class:`~repro.sat.types.SolverStats` snapshot in
  :attr:`~CdclSolver.last_call_stats`;
* optional *resolution proof recording* (:class:`~repro.sat.proof.ResolutionProof`),
  the feature interpolation requires — and it composes with clause groups:
  grouped clauses are recorded with their activation literal, partition
  label and group tag, an UNSAT answer under assumptions records a
  *final-conflict chain* resolving down to a clause of negated assumption
  literals (:meth:`~CdclSolver.last_refutation_root`), and
  :func:`repro.sat.proof.strip_activations` then removes the active
  groups' literals to yield a genuine refutation of the caller's formula.
  Chains that depend on a *released* group cannot be repaired and raise
  :class:`~repro.sat.proof.ActivationDependencyError` — callers fall back
  to a fresh monolithic solve (see :mod:`repro.core.base`).

Performance note: a pure-Python CDCL is roughly two to three orders of
magnitude slower than MiniSAT.  The engines therefore run on down-scaled
benchmark instances; the *relative* behaviour of the verification
algorithms, which is what the paper studies, is preserved.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cnf.cnf import Clause
from .proof import ResolutionProof
from .types import Budget, BudgetExceeded, SatResult, SolverStats

__all__ = ["CdclSolver", "SolverError"]

_UNASSIGNED = -1


class SolverError(RuntimeError):
    """Raised on misuse of the solver API."""


class _ClauseRec:
    """Internal clause record."""

    __slots__ = ("cid", "lits", "learned", "activity", "deleted")

    def __init__(self, cid: int, lits: List[int], learned: bool) -> None:
        self.cid = cid
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.deleted = False


def _lit_index(lit: int) -> int:
    """Map a DIMACS literal to a dense index (positive -> 2v, negative -> 2v+1)."""
    return (abs(lit) << 1) | (lit < 0)


class CdclSolver:
    """Conflict-driven clause-learning SAT solver with optional proof logging.

    Parameters
    ----------
    proof_logging:
        When ``True`` every clause addition and every learned clause is
        recorded in a :class:`ResolutionProof`, available through
        :meth:`proof` after an UNSAT answer.  Under assumptions the trace
        roots at a final-conflict clause (:meth:`last_refutation_root`)
        instead of the empty clause; see :meth:`proof`.
    """

    def __init__(self, proof_logging: bool = False) -> None:
        self.proof_logging = proof_logging
        self.stats = SolverStats()

        self._num_vars = 0
        self._clauses: List[_ClauseRec] = []
        self._watches: List[List[_ClauseRec]] = [[], []]  # indexed by _lit_index
        self._assign: List[int] = [_UNASSIGNED]           # var -> 0/1/_UNASSIGNED
        self._level: List[int] = [0]
        self._reason: List[Optional[_ClauseRec]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._queue_head = 0

        self._activity: List[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase: List[bool] = [False]
        self._order_dirty = True
        self._order: List[int] = []

        self._clause_inc = 1.0
        self._clause_decay = 0.999
        self._learned_count = 0
        self._max_learned = 4000

        self._next_cid = 0
        self._proof = ResolutionProof() if proof_logging else None
        self._root_conflict = False      # empty clause / level-0 conflict seen
        self._ok = True

        self._model: Optional[Dict[int, bool]] = None
        self._conflict_assumptions: Optional[List[int]] = None
        self._last_result: Optional[SatResult] = None
        #: Proof id of the last UNSAT answer's root clause (see
        #: :meth:`last_refutation_root`).
        self._refutation_root: Optional[int] = None

        #: Clause groups: activation variable -> clause records of the group.
        self._groups: Dict[int, List[_ClauseRec]] = {}
        #: Every activation variable ever handed out (released ones stay:
        #: strip_activations must know which variables to reject chains on).
        self._group_vars: Set[int] = set()
        #: Counters attributable to the most recent :meth:`solve` call
        #: (including any clauses added since the preceding call ended).
        self.last_call_stats = SolverStats()
        self._stats_mark = SolverStats()

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        """Allocate and return a fresh variable (1-based)."""
        self._num_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        self._order_dirty = True
        return self._num_vars

    def ensure_var(self, var: int) -> None:
        """Make sure ``var`` exists (allocating intermediate variables)."""
        while self._num_vars < var:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return sum(1 for c in self._clauses if not c.deleted and not c.learned)

    def add_clause(self, literals: Iterable[int],
                   partition: Optional[int] = None,
                   group: Optional[int] = None) -> Optional[int]:
        """Add an input clause; return its proof clause id (or ``None``).

        ``partition`` tags the clause for interpolation (which member of the
        ``Gamma`` partition / which side of the (A, B) cut it belongs to).
        Clauses may be added only before :meth:`solve` is first called or
        between calls at decision level 0 — the watch positions are chosen
        against the current level-0 assignment, so clauses arriving already
        unit or conflicting are handled correctly.

        ``group`` attaches the clause to an activation-literal group from
        :meth:`new_group`: the group's negated activation literal is appended,
        so the clause only constrains solves that assume the activation
        literal, and the whole group can later be retracted with
        :meth:`release_group`.
        """
        if self._trail_lim:
            raise SolverError("clauses may only be added at decision level 0")
        lits = list(dict.fromkeys(literals))
        for lit in lits:
            if lit == 0:
                raise SolverError("0 is not a valid literal")
            self.ensure_var(abs(lit))
        if group is not None:
            if group not in self._groups:
                raise SolverError(f"unknown or released clause group {group}")
            if -group not in lits:
                lits.append(-group)
        self.stats.clauses_added += 1
        cid = self._next_cid
        self._next_cid += 1
        if self._proof is not None:
            self._proof.add_original(cid, Clause(lits), partition, group)

        # Tautologies are recorded (for proof completeness) but never watched.
        if any(-lit in lits for lit in lits):
            return cid

        rec = _ClauseRec(cid, lits, learned=False)
        if group is not None:
            self._groups[group].append(rec)
        if not lits:
            self._clauses.append(rec)
            self._ok = False
            self._root_conflict = True
            if self._proof is not None and self._proof.empty_clause_id is None:
                # The input itself contains the empty clause; re-register it as
                # the refutation root by a trivial (single-antecedent) chain.
                empty_cid = self._next_cid
                self._next_cid += 1
                self._proof.add_derived(empty_cid, Clause([]), [(None, cid)])
            return cid

        if len(lits) == 1:
            self._clauses.append(rec)
            if not self._enqueue(lits[0], rec):
                self._handle_root_conflict(rec)
            return cid

        # Pick watch positions on literals that are not already false under
        # the current level-0 assignment; handle clauses that arrive already
        # unit or conflicting (possible because earlier units assigned
        # variables at level 0).
        non_false = [i for i, lit in enumerate(lits) if self._value(lit) != 0]
        if len(non_false) == 0:
            self._clauses.append(rec)
            self._handle_root_conflict(rec)
            return cid
        if len(non_false) == 1:
            self._clauses.append(rec)
            only = lits[non_false[0]]
            if self._value(only) == _UNASSIGNED:
                self._enqueue(only, rec)
            return cid
        i0, i1 = non_false[0], non_false[1]
        lits[0], lits[i0] = lits[i0], lits[0]
        if i1 == 0:
            i1 = i0
        lits[1], lits[i1] = lits[i1], lits[1]
        self._attach(rec)
        return cid

    def add_cnf(self, clauses: Iterable[Sequence[int]],
                partition: Optional[int] = None) -> List[Optional[int]]:
        """Add many clauses with a shared partition label."""
        return [self.add_clause(c, partition) for c in clauses]

    # ------------------------------------------------------------------ #
    # Activation-literal clause groups (incremental retraction)
    # ------------------------------------------------------------------ #
    def new_group(self) -> int:
        """Open a clause group; returns its handle (the activation literal).

        Clauses added with ``group=handle`` get ``-handle`` appended, so they
        only bind when :meth:`solve` is passed ``handle`` among its
        assumptions (see :meth:`group_literal`).  With proof logging on,
        grouped clauses are recorded with their group tag and the activation
        literals of the still-active groups can later be stripped from the
        recorded trace (:func:`repro.sat.proof.strip_activations`), turning
        an UNSAT-under-assumptions answer into a genuine refutation of the
        caller's formula.
        """
        var = self.new_var()
        self._groups[var] = []
        self._group_vars.add(var)
        return var

    def group_literal(self, group: int) -> int:
        """The assumption literal that activates a group's clauses."""
        if group not in self._groups:
            raise SolverError(f"unknown or released clause group {group}")
        return group

    def release_group(self, group: int) -> None:
        """Permanently retract a group's clauses.

        The activation literal is asserted false (satisfying, and thereby
        neutralising, every clause of the group as well as any learned clause
        derived from them) and the group's input clauses are dropped from the
        watch lists.
        """
        if self._trail_lim:
            raise SolverError("groups may only be released at decision level 0")
        recs = self._groups.pop(group, None)
        if recs is None:
            raise SolverError(f"unknown or released clause group {group}")
        for rec in recs:
            rec.deleted = True
        self.add_clause([-group])

    def group_vars(self) -> Set[int]:
        """Every activation variable ever allocated, released ones included.

        :func:`repro.sat.proof.strip_activations` takes the complement of
        the assumed groups within this set as the variables a valid core
        must never touch.
        """
        return set(self._group_vars)

    def active_groups(self) -> Set[int]:
        """The activation variables of the currently open (unreleased) groups."""
        return set(self._groups)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(self, assumptions: Sequence[int] = (),
              budget: Optional[Budget] = None) -> SatResult:
        """Run the CDCL search.

        Returns :data:`SatResult.SAT`, :data:`SatResult.UNSAT` or
        :data:`SatResult.UNKNOWN` (budget exhausted).  After SAT,
        :meth:`model` returns a satisfying assignment.  After UNSAT with
        assumptions, :meth:`conflict_assumptions` returns the subset of
        assumptions responsible.  After UNSAT without assumptions and with
        proof logging enabled, :meth:`proof` returns a refutation.

        The call may be repeated: the clause database (including learned
        clauses), variable activities and saved phases persist, which is what
        makes incremental BMC deepening profitable.  After every call,
        :attr:`last_call_stats` holds the counter deltas attributable to it
        (clauses encoded since the previous call included).
        """
        try:
            return self._solve_main(assumptions, budget)
        finally:
            self.stats.solve_calls += 1
            self.last_call_stats = self.stats.diff(self._stats_mark)
            self._stats_mark = self.stats.copy()

    def _solve_main(self, assumptions: Sequence[int],
                    budget: Optional[Budget]) -> SatResult:
        self._model = None
        self._conflict_assumptions = None
        self._refutation_root = None
        budget = budget or Budget()
        start = time.monotonic()

        if not self._ok:
            self._last_result = SatResult.UNSAT
            self._conflict_assumptions = []
            if self._proof is not None:
                self._refutation_root = self._proof.empty_clause_id
            return SatResult.UNSAT

        # Top-level propagation of everything pending.
        conflict = self._propagate()
        if conflict is not None:
            self._handle_root_conflict(conflict)
            self._last_result = SatResult.UNSAT
            self._conflict_assumptions = []
            return SatResult.UNSAT

        assumption_list = list(assumptions)
        for lit in assumption_list:
            self.ensure_var(abs(lit))

        try:
            result = self._search(assumption_list, budget, start)
        except BudgetExceeded:
            result = SatResult.UNKNOWN
        finally:
            self._backtrack(0)
        self._last_result = result
        return result

    def model(self) -> Dict[int, bool]:
        """Return the satisfying assignment found by the last SAT answer."""
        if self._model is None:
            raise SolverError("no model available (last call was not SAT)")
        return dict(self._model)

    def model_value(self, lit: int) -> bool:
        """Evaluate a literal in the last model."""
        model = self.model()
        value = model.get(abs(lit), False)
        return value if lit > 0 else not value

    def conflict_assumptions(self) -> List[int]:
        """Return the failed-assumption subset from the last UNSAT answer."""
        if self._conflict_assumptions is None:
            raise SolverError("no assumption conflict available")
        return list(self._conflict_assumptions)

    def proof(self) -> ResolutionProof:
        """Return the recorded proof after an UNSAT answer.

        After an assumption-free UNSAT answer the proof is a refutation
        (it derives the empty clause).  After UNSAT *under assumptions*
        the recorded trace instead ends in a final-conflict clause over
        negated assumption literals — its id is
        :meth:`last_refutation_root` — and callers solving on
        activation-literal clause groups turn it into a genuine refutation
        with :func:`repro.sat.proof.strip_activations`.
        """
        if self._proof is None:
            raise SolverError("proof logging is disabled")
        if not self._proof.is_refutation() and self._refutation_root is None:
            raise SolverError("no refutation recorded (last answer was not "
                              "a proof-logged UNSAT)")
        return self._proof

    def last_refutation_root(self) -> Optional[int]:
        """Proof id of the clause that roots the last UNSAT answer's derivation.

        The empty clause for assumption-free answers; the final-conflict
        clause (every literal a negated assumption) for answers under
        assumptions.  ``None`` when the last answer was not UNSAT, when
        proof logging is off, or when the inconsistency lay among the
        assumption literals themselves (two complementary assumptions) —
        no input-clause derivation exists in that case.
        """
        return self._refutation_root

    # ------------------------------------------------------------------ #
    # CDCL core
    # ------------------------------------------------------------------ #
    def _search(self, assumptions: List[int], budget: Budget,
                start_time: float) -> SatResult:
        restart_count = 0
        conflicts_until_restart = self._luby(restart_count) * 100
        # Budgets are per call: on a persistent (incremental) solver the
        # lifetime counter keeps growing, so the limit applies to the delta.
        conflict_base = self.stats.conflicts

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                if self._decision_level() == 0:
                    self._handle_root_conflict(conflict)
                    self._conflict_assumptions = []
                    return SatResult.UNSAT
                learned, backjump_level, chain = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._record_learned(learned, chain)
                self._decay_activities()

                if budget.max_conflicts is not None and \
                        self.stats.conflicts - conflict_base >= budget.max_conflicts:
                    raise BudgetExceeded()
                if budget.max_time is not None and \
                        time.monotonic() - start_time > budget.max_time:
                    raise BudgetExceeded()

                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_count += 1
                    self.stats.restarts += 1
                    conflicts_until_restart = self._luby(restart_count) * 100
                    self._backtrack(0)
                if self._learned_count >= self._max_learned:
                    self._reduce_db()
                continue

            # No conflict: extend assumptions, then decide.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._value(lit)
                if value == 1:
                    # Already satisfied; open an empty decision level to keep
                    # the level <-> assumption correspondence simple.
                    self._new_decision_level()
                    continue
                if value == 0:
                    self._conflict_assumptions = self._analyze_final(lit, assumptions)
                    # Recorded before _backtrack(0) wipes the reasons; reads
                    # the trail only, so the search trajectory is untouched.
                    self._record_assumption_refutation(lit, assumptions)
                    return SatResult.UNSAT
                self._new_decision_level()
                self._enqueue(lit, None)
                continue

            lit = self._pick_branch()
            if lit is None:
                self._model = {v: self._assign[v] == 1
                               for v in range(1, self._num_vars + 1)}
                return SatResult.SAT
            self.stats.decisions += 1
            self._new_decision_level()
            self._enqueue(lit, None)

    def _propagate(self) -> Optional[_ClauseRec]:
        """Unit propagation; return the conflicting clause or ``None``."""
        # _lit_index is inlined throughout this method: the watch-list lookups
        # sit on the hottest path of the whole system and the function-call
        # overhead is measurable (see benchmarks/test_bench_incremental.py).
        watches = self._watches
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.stats.propagations += 1
            false_lit = -lit
            false_idx = (abs(false_lit) << 1) | (false_lit < 0)
            watch_list = watches[false_idx]
            new_watch_list: List[_ClauseRec] = []
            conflict: Optional[_ClauseRec] = None
            i = 0
            while i < len(watch_list):
                rec = watch_list[i]
                i += 1
                if rec.deleted:
                    continue
                lits = rec.lits
                # Normalise: watched literals sit at positions 0 and 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                other = lits[0]
                if self._value(other) == 1:
                    new_watch_list.append(rec)
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        new_watch = lits[1]
                        watches[(abs(new_watch) << 1) | (new_watch < 0)].append(rec)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(rec)
                if self._value(other) == 0:
                    conflict = rec
                    # Keep the remaining watchers.
                    new_watch_list.extend(
                        r for r in watch_list[i:] if not r.deleted)
                    self._queue_head = len(self._trail)
                    break
                self._enqueue(other, rec)
            watches[false_idx] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    def _analyze(self, conflict: _ClauseRec) -> Tuple[List[int], int,
                                                      List[Tuple[Optional[int], int]]]:
        """First-UIP conflict analysis.

        Returns ``(learned_clause, backjump_level, proof_chain)``.
        """
        learned: List[int] = []
        seen: Set[int] = set()
        counter = 0
        current_level = self._decision_level()
        chain: List[Tuple[Optional[int], int]] = [(None, conflict.cid)]
        clause: Optional[_ClauseRec] = conflict
        trail_index = len(self._trail) - 1
        pivot_lit: Optional[int] = None

        while True:
            assert clause is not None
            self._bump_clause(clause)
            for lit in clause.lits:
                if pivot_lit is not None and lit == pivot_lit:
                    continue
                var = abs(lit)
                if var in seen:
                    continue
                # Literals falsified at level 0 are kept in the learned
                # clause: this keeps the recorded resolution chain an exact
                # derivation of the learned clause, which the interpolation
                # replay relies on.
                seen.add(var)
                self._bump_var(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next literal to resolve on (most recent on the trail).
            while trail_index >= 0 and (abs(self._trail[trail_index]) not in seen
                                        or self._level[abs(self._trail[trail_index])]
                                        != current_level):
                trail_index -= 1
            if trail_index < 0:  # pragma: no cover - defensive
                raise SolverError("conflict analysis ran off the trail")
            pivot_var = abs(self._trail[trail_index])
            seen.discard(pivot_var)
            counter -= 1
            trail_index -= 1
            if counter <= 0:
                # First UIP reached: the asserting literal.
                uip_lit = -self._trail[trail_index + 1]
                learned.insert(0, uip_lit)
                break
            clause = self._reason[pivot_var]
            if clause is None:  # pragma: no cover - defensive
                raise SolverError("missing reason during conflict analysis")
            pivot_lit = self._trail[trail_index + 1]
            chain.append((pivot_var, clause.cid))

        # Reorder so the second literal has the highest decision level among
        # the non-asserting literals: after backjumping this keeps the second
        # watch unassigned as long as possible.
        if len(learned) > 2:
            best = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
            learned[1], learned[best] = learned[best], learned[1]
        # Backjump level = highest level among the non-asserting literals.
        if len(learned) == 1:
            backjump = 0
        else:
            backjump = max(self._level[abs(l)] for l in learned[1:])
        self.stats.learned_clauses += 1
        self.stats.learned_literals += len(learned)
        return learned, backjump, chain

    def _analyze_final(self, failed_lit: int, assumptions: List[int]) -> List[int]:
        """Compute a subset of ``assumptions`` that together are inconsistent.

        ``failed_lit`` is the assumption found falsified; the returned set
        contains it plus the assumptions whose propagation forced it false.
        """
        assumption_set = set(assumptions)
        conflict_set: Set[int] = {failed_lit} if failed_lit in assumption_set else set()
        seen: Set[int] = set()
        queue = [abs(failed_lit)]
        while queue:
            var = queue.pop()
            if var in seen or self._level[var] == 0:
                continue
            seen.add(var)
            reason = self._reason[var]
            if reason is None:
                # A decision: under assumption solving every decision below
                # len(assumptions) levels is an assumption literal.
                true_lit = var if self._assign[var] == 1 else -var
                if true_lit in assumption_set:
                    conflict_set.add(true_lit)
                elif -true_lit in assumption_set:
                    conflict_set.add(-true_lit)
            else:
                for other in reason.lits:
                    queue.append(abs(other))
        return sorted(conflict_set, key=abs)

    def _record_assumption_refutation(self, failed_lit: int,
                                      assumptions: List[int]) -> None:
        """Record the final-conflict chain of an UNSAT-under-assumptions answer.

        Called when extending the assumptions found ``failed_lit`` already
        falsified.  Starting from its falsifying reason, every falsified
        literal that is not a negated assumption is resolved against its own
        reason (latest-assigned first, so each step only introduces literals
        assigned earlier), terminating in a clause whose literals are all
        negated assumptions — the assumption-level analogue of the empty
        clause, and the root :func:`repro.sat.proof.strip_activations`
        reduces to the empty clause when the assumptions are activation
        literals.  The walk only reads the trail and the reasons, so
        recording never perturbs the search trajectory.
        """
        if self._proof is None:
            return
        reason = self._reason[abs(failed_lit)]
        if reason is None:
            # The complement of ``failed_lit`` is itself an assumption
            # decision: the inconsistency lies among the assumption literals,
            # not the clauses — there is no input-clause derivation.
            return
        assumption_set = set(assumptions)
        position = {abs(lit): i for i, lit in enumerate(self._trail)}
        chain: List[Tuple[Optional[int], int]] = [(None, reason.cid)]
        current: Set[int] = set(reason.lits)
        guard = 0
        while True:
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - defensive
                raise SolverError("runaway assumption-conflict analysis")
            pending = [lit for lit in current if -lit not in assumption_set]
            if not pending:
                break
            lit = max(pending, key=lambda l: position[abs(l)])
            var = abs(lit)
            lit_reason = self._reason[var]
            if lit_reason is None:  # pragma: no cover - defensive
                raise SolverError(f"falsified literal {lit} has no reason "
                                  "in the final conflict")
            chain.append((var, lit_reason.cid))
            current.discard(lit)
            current |= {other for other in lit_reason.lits if abs(other) != var}
        cid = self._next_cid
        self._next_cid += 1
        self._proof.add_derived(cid, Clause(sorted(current)), chain)
        self._refutation_root = cid

    def _record_learned(self, learned: List[int],
                        chain: List[Tuple[Optional[int], int]]) -> None:
        cid = self._next_cid
        self._next_cid += 1
        if self._proof is not None:
            self._proof.add_derived(cid, Clause(learned), chain)
        rec = _ClauseRec(cid, list(learned), learned=True)
        if len(learned) == 1:
            # Unit learned clause: asserting at level 0 after the backjump.
            self._enqueue(learned[0], rec)
            self._clauses.append(rec)
            return
        rec.activity = self._clause_inc
        self._attach(rec)
        self._learned_count += 1
        self._enqueue(learned[0], rec)

    def _handle_root_conflict(self, conflict: _ClauseRec) -> None:
        """Derive the empty clause from a conflict at decision level 0."""
        self._ok = False
        first = not self._root_conflict
        self._root_conflict = True
        if self._proof is None:
            return
        if first and self._proof.empty_clause_id is None:
            # Resolve the conflicting clause against level-0 reasons until
            # empty.
            chain: List[Tuple[Optional[int], int]] = [(None, conflict.cid)]
            current = {l for l in conflict.lits}
            guard = 0
            while current:
                guard += 1
                if guard > 10_000_000:  # pragma: no cover - defensive
                    raise SolverError("runaway final conflict analysis")
                lit = next(iter(current))
                var = abs(lit)
                reason = self._reason[var]
                if reason is None:
                    raise SolverError(
                        f"variable {var} falsified at level 0 without a reason")
                chain.append((var, reason.cid))
                current.discard(lit)
                current.discard(-lit)
                for other in reason.lits:
                    if abs(other) != var:
                        current.add(other)
                # Remove literals satisfied... none can be satisfied: all
                # level-0 reasons imply their head literal; the remaining
                # literals are the falsified tail literals, which must be
                # resolved away in turn.
            cid = self._next_cid
            self._next_cid += 1
            self._proof.add_derived(cid, Clause([]), chain)
        self._refutation_root = self._proof.empty_clause_id

    # ------------------------------------------------------------------ #
    # Assignment management
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> int:
        """Return 1 (true), 0 (false) or _UNASSIGNED for a literal."""
        value = self._assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else 1 - value

    def _enqueue(self, lit: int, reason: Optional[_ClauseRec]) -> bool:
        value = self._value(lit)
        if value == 1:
            return True
        if value == 0:
            return False
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))
        self.stats.max_decision_level = max(self.stats.max_decision_level,
                                            self._decision_level())

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            self._order_dirty = True
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = min(self._queue_head, len(self._trail))

    # ------------------------------------------------------------------ #
    # Heuristics
    # ------------------------------------------------------------------ #
    def _pick_branch(self) -> Optional[int]:
        best_var = None
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED and self._activity[var] > best_act:
                best_act = self._activity[var]
                best_var = var
        if best_var is None:
            return None
        return best_var if self._phase[best_var] else -best_var

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, rec: _ClauseRec) -> None:
        if not rec.learned:
            return
        rec.activity += self._clause_inc
        if rec.activity > 1e20:
            for other in self._clauses:
                if other.learned:
                    other.activity *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._clause_inc /= self._clause_decay

    def _reduce_db(self) -> None:
        """Remove the less active half of the learned clauses."""
        self.stats.db_reductions += 1
        locked = {id(self._reason[abs(lit)]) for lit in self._trail
                  if self._reason[abs(lit)] is not None}
        learned = [c for c in self._clauses
                   if c.learned and not c.deleted and len(c.lits) > 2]
        learned.sort(key=lambda c: c.activity)
        to_remove = learned[: len(learned) // 2]
        for rec in to_remove:
            if id(rec) in locked:
                continue
            rec.deleted = True
            self._learned_count -= 1
            self.stats.removed_clauses += 1
        self._max_learned = int(self._max_learned * 1.2)

    @staticmethod
    def _luby(index: int) -> int:
        """Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...

        ``index`` is 0-based.
        """
        i = index + 1
        while True:
            k = 1
            while (1 << k) - 1 < i:
                k += 1
            if (1 << k) - 1 == i:
                return 1 << (k - 1)
            i -= (1 << (k - 1)) - 1

    # ------------------------------------------------------------------ #
    # Watches
    # ------------------------------------------------------------------ #
    def _attach(self, rec: _ClauseRec) -> None:
        self._clauses.append(rec)
        self._watches[_lit_index(rec.lits[0])].append(rec)
        self._watches[_lit_index(rec.lits[1])].append(rec)
