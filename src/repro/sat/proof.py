"""Resolution proof recording and checking.

The CDCL solver records, for every learned clause, the *regular input
resolution chain* that derives it: a starting clause followed by a sequence
of ``(pivot variable, antecedent clause)`` resolution steps.  When the
solver reaches a conflict at decision level 0 it performs one final analysis
that derives the empty clause, completing a refutation.

The proof is the object interpolation works on: :mod:`repro.itp.craig`
replays the chains bottom-up, attaching partial interpolants to every
clause.  Because the proof keeps the *original* clauses with their partition
labels (which time frame / which side of the (A, B) split they came from),
a single proof supports extraction of a whole interpolation sequence — the
key property the paper exploits (Section II-C, Eq. (2)).

The module also contains an independent proof checker used by the
test-suite: it re-performs every resolution step with the slow-but-obvious
:meth:`Clause.resolve` and confirms the final clause is empty.

Activation-literal clause groups and proofs
-------------------------------------------
A proof recorded on an *incremental* solver (activation-literal clause
groups, :meth:`repro.sat.solver.CdclSolver.new_group`) is a refutation of
the formula *under the assumed activation literals*, not of the caller's
formula: every clause of a group ``g`` carries the literal ``-g``, and so
does every derived clause that transitively used one.  The key structural
fact that makes such proofs salvageable is **literal-presence provenance**:
no clause ever contains the *positive* activation literal ``+g`` (grouped
input clauses only append ``-g``, and learned clauses inherit literals from
input clauses), so no resolution step ever pivots on an activation
variable, and a derived clause depends on group ``g`` exactly when ``-g``
appears among its literals.  :func:`strip_activations` exploits this:
deleting the active groups' ``-g`` literals from every clause commutes with
every recorded resolution step (the pivot is never ``g``), so the chains
replay unchanged and the stripped proof is a genuine refutation of the
caller's formula.  Clauses carrying a *released* (or foreign) group's
literal cannot be repaired that way — their group clauses are gone from
the formula — so a core that touches one is rejected with
:class:`ActivationDependencyError`, the clean fallback signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cnf.cnf import Clause

__all__ = ["ProofNode", "ResolutionProof", "ProofError",
           "ActivationDependencyError", "check_proof",
           "ProofReductionStats", "reduce_proof",
           "ActivationStripStats", "strip_activations"]


class ProofError(ValueError):
    """Raised when a recorded proof fails validation."""


class ActivationDependencyError(ProofError):
    """A refutation core depends on a released (or foreign) clause group.

    Raised by :func:`strip_activations` when the derivation of the root
    clause uses a clause whose activation group is no longer active: the
    group's input clauses are not part of the caller's formula any more, so
    no activation-free refutation can be reconstructed from this trace.
    Callers treat this as the clean signal to fall back to a fresh
    monolithic proof-logged solve.
    """


@dataclass
class ProofNode:
    """One clause in the proof DAG.

    ``chain`` is empty for original (root) clauses.  For derived clauses it
    lists the resolution steps: the derivation starts from clause
    ``chain[0][1]`` (whose pivot entry is ``None``) and successively resolves
    with ``chain[i][1]`` on pivot variable ``chain[i][0]``.
    """

    clause_id: int
    clause: Clause
    chain: List[Tuple[Optional[int], int]] = field(default_factory=list)
    #: Partition label for original clauses (``None`` for derived clauses).
    partition: Optional[int] = None
    #: Activation group of an original clause (``None`` for ungrouped
    #: clauses and for derived clauses).  Derived clauses need no explicit
    #: tag: their group provenance is the presence of ``-g`` among their
    #: literals (see the module docstring).
    group: Optional[int] = None

    @property
    def is_original(self) -> bool:
        return not self.chain

    @property
    def antecedents(self) -> List[int]:
        return [cid for _, cid in self.chain]


class ResolutionProof:
    """A recorded resolution refutation (or partial derivation).

    Clause identifiers are dense integers assigned by the solver in creation
    order, which guarantees antecedents always have smaller identifiers than
    the clauses derived from them — the property the interpolation replay
    relies on to process nodes in one pass.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, ProofNode] = {}
        self._order: List[int] = []
        self.empty_clause_id: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Construction (called by the solver)
    # ------------------------------------------------------------------ #
    def add_original(self, clause_id: int, clause: Clause,
                     partition: Optional[int] = None,
                     group: Optional[int] = None) -> None:
        """Register an original (input) clause.

        ``group`` records the activation-literal group the clause belongs
        to, when the solver added it under one — the bookkeeping
        :func:`strip_activations` uses to tell a group's defining clauses
        apart from permanent ones.
        """
        if clause_id in self._nodes:
            raise ProofError(f"duplicate clause id {clause_id}")
        self._nodes[clause_id] = ProofNode(clause_id, clause, [], partition,
                                           group)
        self._order.append(clause_id)

    def add_derived(self, clause_id: int, clause: Clause,
                    chain: Sequence[Tuple[Optional[int], int]]) -> None:
        """Register a derived clause with its resolution chain."""
        if clause_id in self._nodes:
            raise ProofError(f"duplicate clause id {clause_id}")
        if not chain:
            raise ProofError("derived clause requires a non-empty chain")
        if chain[0][0] is not None:
            raise ProofError("first chain entry must carry no pivot")
        for pivot, antecedent in chain:
            if antecedent not in self._nodes:
                raise ProofError(f"chain references unknown clause {antecedent}")
            if antecedent >= clause_id:
                raise ProofError("antecedent ids must precede the derived clause id")
        self._nodes[clause_id] = ProofNode(clause_id, clause, list(chain), None)
        self._order.append(clause_id)
        if len(clause) == 0:
            self.empty_clause_id = clause_id

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, clause_id: int) -> bool:
        return clause_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, clause_id: int) -> ProofNode:
        return self._nodes[clause_id]

    def nodes_in_order(self) -> List[ProofNode]:
        """All nodes in creation (topological) order."""
        return [self._nodes[cid] for cid in self._order]

    def original_nodes(self) -> List[ProofNode]:
        return [n for n in self.nodes_in_order() if n.is_original]

    def derived_nodes(self) -> List[ProofNode]:
        return [n for n in self.nodes_in_order() if not n.is_original]

    def is_refutation(self) -> bool:
        """``True`` when the proof derives the empty clause."""
        return self.empty_clause_id is not None

    def partitions(self) -> Set[int]:
        """Return the set of partition labels used by original clauses."""
        return {n.partition for n in self.original_nodes() if n.partition is not None}

    # ------------------------------------------------------------------ #
    # Core DAG extraction
    # ------------------------------------------------------------------ #
    def core_ids(self, root_id: Optional[int] = None) -> List[int]:
        """Return the clause ids reachable from ``root_id`` (default: the empty clause).

        The result is in topological order (antecedents before consequents)
        and is the *unsat core DAG* interpolation actually traverses; chains
        recorded for clauses that never feed the refutation are skipped.
        """
        if root_id is None:
            if self.empty_clause_id is None:
                raise ProofError("proof does not derive the empty clause")
            root_id = self.empty_clause_id
        needed: Set[int] = set()
        stack = [root_id]
        while stack:
            cid = stack.pop()
            if cid in needed:
                continue
            needed.add(cid)
            stack.extend(self._nodes[cid].antecedents)
        return [cid for cid in self._order if cid in needed]

    def core_original_clauses(self) -> List[ProofNode]:
        """Original clauses participating in the refutation."""
        core = set(self.core_ids())
        return [n for n in self.original_nodes() if n.clause_id in core]

    def stats(self) -> Dict[str, int]:
        core = self.core_ids() if self.is_refutation() else []
        return {
            "clauses": len(self._nodes),
            "original": len(self.original_nodes()),
            "derived": len(self.derived_nodes()),
            "core": len(core),
            "refutation": int(self.is_refutation()),
        }


def _resolve_chain(proof: ResolutionProof, node: ProofNode) -> Clause:
    """Replay one node's chain with explicit resolution; return the result."""
    current = proof.node(node.chain[0][1]).clause
    for pivot, antecedent_id in node.chain[1:]:
        if pivot is None:
            raise ProofError("only the first chain entry may omit the pivot")
        antecedent = proof.node(antecedent_id).clause
        current = current.resolve(antecedent, pivot)
    return current


# --------------------------------------------------------------------- #
# Proof post-processing (trimming + RecyclePivots)
# --------------------------------------------------------------------- #
@dataclass
class ProofReductionStats:
    """What :func:`reduce_proof` removed from a refutation.

    ``nodes_trimmed`` is the headline counter threaded into the engines'
    statistics: how many proof nodes the reduced refutation no longer
    carries (off-core derived clauses, plus chains that RecyclePivots
    collapsed into an alias for one of their premises).
    """

    nodes_before: int = 0
    nodes_after: int = 0
    steps_dropped: int = 0
    clauses_strengthened: int = 0

    @property
    def nodes_trimmed(self) -> int:
        return self.nodes_before - self.nodes_after


def _chain_pivot_literal(pivot: int, antecedent: Clause) -> Optional[int]:
    """The pivot literal as it occurs in the antecedent clause (or ``None``)."""
    if pivot in antecedent.literals:
        return pivot
    if -pivot in antecedent.literals:
        return -pivot
    return None


def _mark_recyclable(proof: ResolutionProof, derived_core: List["ProofNode"],
                     refcount: Dict[int, int]
                     ) -> Tuple[Dict[int, int], Dict[int, Set[int]]]:
    """RecyclePivots marking pass over the core's chains.

    Walks the derivation DAG from the empty clause towards the leaves,
    maintaining per (virtual) resolvent the set of *safe literals* — pivot
    literals guaranteed to be resolved away again on the (unique) path down
    to the root.  A resolution step whose pivot is already safe is
    redundant: the premise carrying the safe literal can replace the
    resolvent, because the extra literal it leaves behind dies downstream
    anyway.  Nodes referenced from more than one chain get an empty safe
    set (the paths below them diverge), the classic single-child
    restriction of RecyclePivots.

    Returns ``(start_at, dropped)``: for each chain, the step index the
    reconstruction should start from (0 = the recorded start clause) and
    the set of step indices to drop.
    """
    rl: Dict[int, Set[int]] = {}
    live: Set[int] = set()
    start_at: Dict[int, int] = {}
    dropped: Dict[int, Set[int]] = {}
    root_id = proof.empty_clause_id
    assert root_id is not None
    live.add(root_id)
    rl[root_id] = set()

    for node in reversed(derived_core):
        cid = node.clause_id
        if cid not in live:
            continue  # every reference to this chain was recycled away
        safe = rl.get(cid, set()) if refcount.get(cid, 0) <= 1 else set()
        start = 0
        drops: Set[int] = set()
        chain = node.chain
        for index in range(len(chain) - 1, 0, -1):
            pivot, antecedent_id = chain[index]
            assert pivot is not None
            lit = _chain_pivot_literal(pivot, proof.node(antecedent_id).clause)
            if lit is None:
                # Defensive: a malformed step; keep it, stop propagating.
                safe = set()
                continue

            def _note_antecedent(contribution: Set[int]) -> None:
                ante = proof.node(antecedent_id)
                if not ante.is_original:
                    live.add(antecedent_id)
                    if refcount.get(antecedent_id, 0) == 1:
                        rl[antecedent_id] = contribution
                    else:
                        rl[antecedent_id] = set()

            if -lit in safe:
                # The prefix side's pivot literal survives harmlessly:
                # drop this step, keep resolving the prefix.
                drops.add(index)
                continue
            if lit in safe:
                # The antecedent side's pivot literal is safe below: the
                # whole prefix (steps 1..index) is bypassed and the chain
                # restarts at this antecedent.
                start = index
                _note_antecedent(set(safe))
                break
            _note_antecedent(safe | {lit})
            safe = safe | {-lit}
        if start == 0:
            start_node = proof.node(chain[0][1])
            if not start_node.is_original:
                live.add(chain[0][1])
                if refcount.get(chain[0][1], 0) == 1:
                    rl[chain[0][1]] = safe
                else:
                    rl[chain[0][1]] = set()
        start_at[cid] = start
        dropped[cid] = drops
    return start_at, dropped


def reduce_proof(proof: ResolutionProof, recycle_pivots: bool = True
                 ) -> Tuple[ResolutionProof, ProofReductionStats]:
    """Return a reduced copy of a refutation, plus what the reduction did.

    Two post-processing passes over the recorded resolution trace:

    * **core trimming** — derived clauses whose chains never feed the empty
      clause are dropped (the solver records every learned clause, but a
      typical refutation uses a fraction of them);
    * **RecyclePivots** (``recycle_pivots=True``) — redundant-pivot
      elimination in the style of Bar-Ilan et al. (HVC'08): a resolution
      step whose pivot literal is resolved away again on every path below
      is bypassed, and a reconstruction replay propagates the resulting
      clause strengthenings through the remaining chains (a step whose
      pivot no longer occurs in the intermediate clause is skipped; an
      antecedent that lost its pivot literal subsumes the resolvent and
      replaces it).

    Every *original* clause is kept, with its partition label, even when it
    falls outside the core: interpolation classifies variable locality over
    the full (A, B) clause sets (see :mod:`repro.itp.labeling`), so keeping
    the leaves intact guarantees a reduced proof never changes a variable's
    class — only the derivation DAG above the leaves shrinks.  The reduced
    proof replays exactly (reconstruction *is* a replay), so it satisfies
    :func:`check_proof`, and any interpolant extracted from it is a valid
    interpolant for the original (A, B) split.
    """
    if not proof.is_refutation():
        raise ProofError("only refutations can be reduced")
    root_id = proof.empty_clause_id
    assert root_id is not None
    core = proof.core_ids()
    derived_core = [proof.node(cid) for cid in core
                    if not proof.node(cid).is_original]

    refcount: Dict[int, int] = {}
    for node in derived_core:
        for _, antecedent_id in node.chain:
            refcount[antecedent_id] = refcount.get(antecedent_id, 0) + 1

    stats = ProofReductionStats(nodes_before=len(proof))
    if recycle_pivots:
        start_at, dropped = _mark_recyclable(proof, derived_core, refcount)
    else:
        start_at = {n.clause_id: 0 for n in derived_core}
        dropped = {n.clause_id: set() for n in derived_core}

    # Reconstruction: replay every surviving chain front to back, applying
    # the marks and propagating clause strengthenings.  ``alias`` redirects
    # references to chains that collapsed into a single premise.
    alias: Dict[int, int] = {}
    new_clauses: Dict[int, Clause] = {}
    new_chains: Dict[int, List[Tuple[Optional[int], int]]] = {}

    def resolve_id(cid: int) -> int:
        while cid in alias:
            cid = alias[cid]
        return cid

    def clause_of(cid: int) -> Clause:
        if cid in new_clauses:
            return new_clauses[cid]
        return proof.node(cid).clause

    for node in derived_core:
        cid = node.clause_id
        if cid not in start_at:
            continue  # recycled away entirely (never referenced any more)
        chain = node.chain
        start = start_at[cid]
        drops = dropped[cid]
        if start == 0:
            begin_id = resolve_id(chain[0][1])
        else:
            begin_id = resolve_id(chain[start][1])
        current = set(clause_of(begin_id).literals)
        rebuilt: List[Tuple[Optional[int], int]] = [(None, begin_id)]
        for index in range(start + 1 if start else 1, len(chain)):
            if index in drops:
                stats.steps_dropped += 1
                continue
            pivot, antecedent_id = chain[index]
            assert pivot is not None
            antecedent_id = resolve_id(antecedent_id)
            c_pos, c_neg = pivot in current, -pivot in current
            if not c_pos and not c_neg:
                # An earlier strengthening already removed the pivot: the
                # intermediate clause subsumes the would-be resolvent.
                stats.steps_dropped += 1
                continue
            antecedent = clause_of(antecedent_id)
            d_pos, d_neg = pivot in antecedent, -pivot in antecedent
            if not d_pos and not d_neg:
                # The antecedent lost its pivot literal: it subsumes the
                # resolvent outright and replaces the whole prefix.
                current = set(antecedent.literals)
                rebuilt = [(None, antecedent_id)]
                stats.steps_dropped += 1
                continue
            if (c_neg and d_pos) or (c_pos and d_neg):
                lit = pivot if (c_neg and d_pos) else -pivot
                current = ((current - {-lit})
                           | (set(antecedent.literals) - {lit}))
                rebuilt.append((pivot, antecedent_id))
            else:
                # Same polarity on both sides (possible only through a
                # tautological ancestor): the original step removed the
                # complement, which the strengthened clause no longer
                # carries, so skipping preserves subsumption.
                stats.steps_dropped += 1
        if len(rebuilt) == 1 and cid != root_id:
            # The chain collapsed to a copy of its premise: alias it.
            alias[cid] = rebuilt[0][1]
            continue
        replayed = Clause(sorted(current))
        if len(replayed) < len(node.clause):
            stats.clauses_strengthened += 1
        new_clauses[cid] = replayed
        new_chains[cid] = rebuilt

    # Garbage-collect: only chains reachable from the root survive.
    needed: Set[int] = set()
    stack = [root_id]
    while stack:
        cid = stack.pop()
        if cid in needed or cid not in new_chains:
            continue
        needed.add(cid)
        stack.extend(aid for _, aid in new_chains[cid])

    reduced = ResolutionProof()
    for node in proof.original_nodes():
        reduced.add_original(node.clause_id, node.clause, node.partition,
                             node.group)
    for node in derived_core:
        cid = node.clause_id
        if cid in needed:
            reduced.add_derived(cid, new_clauses[cid], new_chains[cid])
    if not reduced.is_refutation():
        raise ProofError("proof reduction failed to preserve the refutation")
    stats.nodes_after = len(reduced)
    return reduced, stats


# --------------------------------------------------------------------- #
# Activation-literal stripping (group-aware proofs)
# --------------------------------------------------------------------- #
@dataclass
class ActivationStripStats:
    """What :func:`strip_activations` did to a grouped refutation.

    ``chains_stripped`` is the headline counter threaded into the engines'
    statistics: how many derived clauses carried at least one active
    activation literal that the strip removed.
    """

    nodes_before: int = 0
    nodes_after: int = 0
    chains_stripped: int = 0
    literals_stripped: int = 0
    originals_dropped: int = 0


def strip_activations(proof: ResolutionProof, active_groups: Set[int],
                      other_groups: Set[int] = frozenset(),
                      root_id: Optional[int] = None
                      ) -> Tuple[ResolutionProof, ActivationStripStats]:
    """Turn a grouped refutation into an activation-free one.

    ``proof`` is the raw trace of an incremental solver whose UNSAT answer
    was obtained under the assumptions ``{g : g in active_groups}`` —
    either a recorded empty clause or (the usual incremental case) a
    final-conflict clause over negated activation literals, identified by
    ``root_id`` (default: the recorded empty clause).

    The transformation relies on literal-presence provenance (module
    docstring): activation variables are never resolution pivots, so
    deleting every active group's ``-g`` literal from every clause commutes
    with each recorded resolution step, and the chains are kept verbatim.
    Concretely:

    * original clauses of an *active* group lose their ``-g`` literal and
      keep their partition label — they become exactly the caller-level
      clauses (e.g. the depth target of a BMC check);
    * every other original clause is kept untouched, label included, even
      off-core: interpolation classifies variable locality over the full
      (A, B) clause sets, exactly the rationale of :func:`reduce_proof`;
    * original clauses of *released or foreign* groups — including the
      ``[-g]`` release units a retraction asserts — are dropped when they
      sit outside the root's core and rejected with
      :class:`ActivationDependencyError` when inside it (their group is no
      longer part of the caller's formula);
    * derived clauses outside the core are dropped; derived clauses inside
      it lose the active ``-g`` literals.  A core clause still carrying a
      released/foreign group's literal, a positive activation literal, or
      an activation-variable pivot is rejected — each would falsify the
      provenance invariant the strip is built on;
    * the root clause must strip to the empty clause (its literals are all
      negated active-group literals), completing the refutation.

    Returns the stripped proof and an :class:`ActivationStripStats`.
    """
    if root_id is None:
        root_id = proof.empty_clause_id
    if root_id is None:
        raise ProofError("no refutation root to strip")
    if root_id not in proof:
        raise ProofError(f"unknown refutation root {root_id}")
    active = set(active_groups)
    others = set(other_groups) - active
    strip_lits = {-g for g in active}
    stats = ActivationStripStats(nodes_before=len(proof))
    core = set(proof.core_ids(root_id))

    def is_release_unit(node: ProofNode) -> bool:
        lits = node.clause.literals
        return (node.group is None and len(lits) == 1
                and -lits[0] in others | active)

    stripped = ResolutionProof()
    for node in proof.nodes_in_order():
        cid = node.clause_id
        if node.is_original:
            if node.group in others or is_release_unit(node):
                if cid in core:
                    raise ActivationDependencyError(
                        f"core clause {cid} belongs to released/foreign "
                        f"group {node.group}")
                stats.originals_dropped += 1
                continue
            if node.group in active:
                lits = [l for l in node.clause.literals
                        if l not in strip_lits]
                stats.literals_stripped += len(node.clause) - len(lits)
                stripped.add_original(cid, Clause(lits), node.partition)
            else:
                stripped.add_original(cid, node.clause, node.partition)
            continue
        if cid not in core:
            continue
        for pivot, _ in node.chain:
            if pivot in active or pivot in others:
                raise ActivationDependencyError(
                    f"core clause {cid} resolves on activation variable "
                    f"{pivot}")
        lits = []
        for lit in node.clause.literals:
            if lit in strip_lits:
                continue
            var = abs(lit)
            if var in others:
                raise ActivationDependencyError(
                    f"core clause {cid} depends on released/foreign "
                    f"group {var}")
            if var in active:
                # +g: no clause may ever contain a positive activation
                # literal (provenance invariant).
                raise ActivationDependencyError(
                    f"core clause {cid} carries positive activation "
                    f"literal {lit}")
            lits.append(lit)
        if len(lits) < len(node.clause):
            stats.chains_stripped += 1
            stats.literals_stripped += len(node.clause) - len(lits)
        if cid == root_id and lits:
            raise ProofError(
                f"refutation root {cid} strips to non-empty clause "
                f"{sorted(lits)}")
        stripped.add_derived(cid, Clause(lits), node.chain)
    if not stripped.is_refutation():
        raise ProofError("activation stripping failed to produce a refutation")
    stats.nodes_after = len(stripped)
    return stripped, stats


def check_proof(proof: ResolutionProof, require_refutation: bool = True) -> None:
    """Validate every recorded chain; raise :class:`ProofError` on failure.

    For each derived clause the chain is replayed with explicit binary
    resolution; the replayed clause must *subsume or equal* the recorded
    clause (the solver may record a clause with literals in a different
    order, but never a logically weaker one).
    """
    for node in proof.derived_nodes():
        replayed = _resolve_chain(proof, node)
        recorded = set(node.clause.literals)
        obtained = set(replayed.literals)
        if not obtained <= recorded and obtained != recorded:
            raise ProofError(
                f"clause {node.clause_id}: replayed {sorted(obtained)} is not contained "
                f"in recorded {sorted(recorded)}")
        if len(node.clause) == 0 and len(replayed) != 0:
            raise ProofError(
                f"clause {node.clause_id} recorded as empty but replays to {replayed}")
    if require_refutation and not proof.is_refutation():
        raise ProofError("proof does not derive the empty clause")
