"""Resolution proof recording and checking.

The CDCL solver records, for every learned clause, the *regular input
resolution chain* that derives it: a starting clause followed by a sequence
of ``(pivot variable, antecedent clause)`` resolution steps.  When the
solver reaches a conflict at decision level 0 it performs one final analysis
that derives the empty clause, completing a refutation.

The proof is the object interpolation works on: :mod:`repro.itp.craig`
replays the chains bottom-up, attaching partial interpolants to every
clause.  Because the proof keeps the *original* clauses with their partition
labels (which time frame / which side of the (A, B) split they came from),
a single proof supports extraction of a whole interpolation sequence — the
key property the paper exploits (Section II-C, Eq. (2)).

The module also contains an independent proof checker used by the
test-suite: it re-performs every resolution step with the slow-but-obvious
:meth:`Clause.resolve` and confirms the final clause is empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cnf.cnf import Clause

__all__ = ["ProofNode", "ResolutionProof", "ProofError", "check_proof"]


class ProofError(ValueError):
    """Raised when a recorded proof fails validation."""


@dataclass
class ProofNode:
    """One clause in the proof DAG.

    ``chain`` is empty for original (root) clauses.  For derived clauses it
    lists the resolution steps: the derivation starts from clause
    ``chain[0][1]`` (whose pivot entry is ``None``) and successively resolves
    with ``chain[i][1]`` on pivot variable ``chain[i][0]``.
    """

    clause_id: int
    clause: Clause
    chain: List[Tuple[Optional[int], int]] = field(default_factory=list)
    #: Partition label for original clauses (``None`` for derived clauses).
    partition: Optional[int] = None

    @property
    def is_original(self) -> bool:
        return not self.chain

    @property
    def antecedents(self) -> List[int]:
        return [cid for _, cid in self.chain]


class ResolutionProof:
    """A recorded resolution refutation (or partial derivation).

    Clause identifiers are dense integers assigned by the solver in creation
    order, which guarantees antecedents always have smaller identifiers than
    the clauses derived from them — the property the interpolation replay
    relies on to process nodes in one pass.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, ProofNode] = {}
        self._order: List[int] = []
        self.empty_clause_id: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Construction (called by the solver)
    # ------------------------------------------------------------------ #
    def add_original(self, clause_id: int, clause: Clause,
                     partition: Optional[int] = None) -> None:
        """Register an original (input) clause."""
        if clause_id in self._nodes:
            raise ProofError(f"duplicate clause id {clause_id}")
        self._nodes[clause_id] = ProofNode(clause_id, clause, [], partition)
        self._order.append(clause_id)

    def add_derived(self, clause_id: int, clause: Clause,
                    chain: Sequence[Tuple[Optional[int], int]]) -> None:
        """Register a derived clause with its resolution chain."""
        if clause_id in self._nodes:
            raise ProofError(f"duplicate clause id {clause_id}")
        if not chain:
            raise ProofError("derived clause requires a non-empty chain")
        if chain[0][0] is not None:
            raise ProofError("first chain entry must carry no pivot")
        for pivot, antecedent in chain:
            if antecedent not in self._nodes:
                raise ProofError(f"chain references unknown clause {antecedent}")
            if antecedent >= clause_id:
                raise ProofError("antecedent ids must precede the derived clause id")
        self._nodes[clause_id] = ProofNode(clause_id, clause, list(chain), None)
        self._order.append(clause_id)
        if len(clause) == 0:
            self.empty_clause_id = clause_id

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, clause_id: int) -> bool:
        return clause_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, clause_id: int) -> ProofNode:
        return self._nodes[clause_id]

    def nodes_in_order(self) -> List[ProofNode]:
        """All nodes in creation (topological) order."""
        return [self._nodes[cid] for cid in self._order]

    def original_nodes(self) -> List[ProofNode]:
        return [n for n in self.nodes_in_order() if n.is_original]

    def derived_nodes(self) -> List[ProofNode]:
        return [n for n in self.nodes_in_order() if not n.is_original]

    def is_refutation(self) -> bool:
        """``True`` when the proof derives the empty clause."""
        return self.empty_clause_id is not None

    def partitions(self) -> Set[int]:
        """Return the set of partition labels used by original clauses."""
        return {n.partition for n in self.original_nodes() if n.partition is not None}

    # ------------------------------------------------------------------ #
    # Core DAG extraction
    # ------------------------------------------------------------------ #
    def core_ids(self, root_id: Optional[int] = None) -> List[int]:
        """Return the clause ids reachable from ``root_id`` (default: the empty clause).

        The result is in topological order (antecedents before consequents)
        and is the *unsat core DAG* interpolation actually traverses; chains
        recorded for clauses that never feed the refutation are skipped.
        """
        if root_id is None:
            if self.empty_clause_id is None:
                raise ProofError("proof does not derive the empty clause")
            root_id = self.empty_clause_id
        needed: Set[int] = set()
        stack = [root_id]
        while stack:
            cid = stack.pop()
            if cid in needed:
                continue
            needed.add(cid)
            stack.extend(self._nodes[cid].antecedents)
        return [cid for cid in self._order if cid in needed]

    def core_original_clauses(self) -> List[ProofNode]:
        """Original clauses participating in the refutation."""
        core = set(self.core_ids())
        return [n for n in self.original_nodes() if n.clause_id in core]

    def stats(self) -> Dict[str, int]:
        core = self.core_ids() if self.is_refutation() else []
        return {
            "clauses": len(self._nodes),
            "original": len(self.original_nodes()),
            "derived": len(self.derived_nodes()),
            "core": len(core),
            "refutation": int(self.is_refutation()),
        }


def _resolve_chain(proof: ResolutionProof, node: ProofNode) -> Clause:
    """Replay one node's chain with explicit resolution; return the result."""
    current = proof.node(node.chain[0][1]).clause
    for pivot, antecedent_id in node.chain[1:]:
        if pivot is None:
            raise ProofError("only the first chain entry may omit the pivot")
        antecedent = proof.node(antecedent_id).clause
        current = current.resolve(antecedent, pivot)
    return current


def check_proof(proof: ResolutionProof, require_refutation: bool = True) -> None:
    """Validate every recorded chain; raise :class:`ProofError` on failure.

    For each derived clause the chain is replayed with explicit binary
    resolution; the replayed clause must *subsume or equal* the recorded
    clause (the solver may record a clause with literals in a different
    order, but never a logically weaker one).
    """
    for node in proof.derived_nodes():
        replayed = _resolve_chain(proof, node)
        recorded = set(node.clause.literals)
        obtained = set(replayed.literals)
        if not obtained <= recorded and obtained != recorded:
            raise ProofError(
                f"clause {node.clause_id}: replayed {sorted(obtained)} is not contained "
                f"in recorded {sorted(recorded)}")
        if len(node.clause) == 0 and len(replayed) != 0:
            raise ProofError(
                f"clause {node.clause_id} recorded as empty but replays to {replayed}")
    if require_refutation and not proof.is_refutation():
        raise ProofError("proof does not derive the empty clause")
