"""Shared types for the SAT subsystem."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SatResult", "SolverStats", "Budget", "BudgetExceeded"]


class SatResult(enum.Enum):
    """Outcome of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("SatResult must be compared explicitly, not used as a boolean")


@dataclass
class SolverStats:
    """Counters accumulated by a solver instance.

    ``clauses_added`` counts input (non-learned) clause additions and
    ``solve_calls`` the number of :meth:`~repro.sat.solver.CdclSolver.solve`
    invocations; together with :meth:`diff` they let incremental callers
    attribute work to individual queries
    (:attr:`~repro.sat.solver.CdclSolver.last_call_stats`).
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    db_reductions: int = 0
    removed_clauses: int = 0
    clauses_added: int = 0
    solve_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "learned_literals": self.learned_literals,
            "restarts": self.restarts,
            "max_decision_level": self.max_decision_level,
            "db_reductions": self.db_reductions,
            "removed_clauses": self.removed_clauses,
            "clauses_added": self.clauses_added,
            "solve_calls": self.solve_calls,
        }

    def copy(self) -> "SolverStats":
        return SolverStats(**self.as_dict())

    def diff(self, earlier: "SolverStats") -> "SolverStats":
        """Counters accumulated since ``earlier`` (a per-call snapshot).

        ``max_decision_level`` is a high-water mark, not a counter, so the
        current value is reported unchanged.
        """
        return SolverStats(
            decisions=self.decisions - earlier.decisions,
            propagations=self.propagations - earlier.propagations,
            conflicts=self.conflicts - earlier.conflicts,
            learned_clauses=self.learned_clauses - earlier.learned_clauses,
            learned_literals=self.learned_literals - earlier.learned_literals,
            restarts=self.restarts - earlier.restarts,
            max_decision_level=self.max_decision_level,
            db_reductions=self.db_reductions - earlier.db_reductions,
            removed_clauses=self.removed_clauses - earlier.removed_clauses,
            clauses_added=self.clauses_added - earlier.clauses_added,
            solve_calls=self.solve_calls - earlier.solve_calls,
        )


class BudgetExceeded(RuntimeError):
    """Raised internally when a resource budget is exhausted mid-search."""


@dataclass
class Budget:
    """Resource budget for a single solver call.

    ``max_conflicts`` bounds the number of conflicts, ``max_time`` the wall
    clock in seconds.  ``None`` means unbounded.  Engines use budgets to
    emulate the paper's per-instance time limit and report *overflow* rather
    than hanging.
    """

    max_conflicts: Optional[int] = None
    max_time: Optional[float] = None

    def unlimited(self) -> bool:
        return self.max_conflicts is None and self.max_time is None
