"""Shared types for the SAT subsystem."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SatResult", "SolverStats", "Budget", "BudgetExceeded"]


class SatResult(enum.Enum):
    """Outcome of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError("SatResult must be compared explicitly, not used as a boolean")


@dataclass
class SolverStats:
    """Counters accumulated by a solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    db_reductions: int = 0
    removed_clauses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "learned_clauses": self.learned_clauses,
            "learned_literals": self.learned_literals,
            "restarts": self.restarts,
            "max_decision_level": self.max_decision_level,
            "db_reductions": self.db_reductions,
            "removed_clauses": self.removed_clauses,
        }


class BudgetExceeded(RuntimeError):
    """Raised internally when a resource budget is exhausted mid-search."""


@dataclass
class Budget:
    """Resource budget for a single solver call.

    ``max_conflicts`` bounds the number of conflicts, ``max_time`` the wall
    clock in seconds.  ``None`` means unbounded.  Engines use budgets to
    emulate the paper's per-instance time limit and report *overflow* rather
    than hanging.
    """

    max_conflicts: Optional[int] = None
    max_time: Optional[float] = None

    def unlimited(self) -> bool:
        return self.max_conflicts is None and self.max_time is None
