"""SAT subsystem: proof-logging CDCL solver, resolution proofs, reference oracles."""

from .checker import brute_force_sat, dpll_sat, verify_model
from .proof import (ActivationDependencyError, ActivationStripStats,
                    ProofError, ProofNode, ResolutionProof, check_proof,
                    strip_activations)
from .solver import CdclSolver, SolverError
from .types import Budget, BudgetExceeded, SatResult, SolverStats

__all__ = [
    "brute_force_sat",
    "dpll_sat",
    "verify_model",
    "ActivationDependencyError",
    "ActivationStripStats",
    "ProofError",
    "ProofNode",
    "ResolutionProof",
    "check_proof",
    "strip_activations",
    "CdclSolver",
    "SolverError",
    "Budget",
    "BudgetExceeded",
    "SatResult",
    "SolverStats",
]
