"""Reference decision procedures used to validate the CDCL solver.

Two oracles are provided:

* :func:`brute_force_sat` — exhaustive truth-table enumeration, usable up to
  ~20 variables.  The property-based tests compare the CDCL answer against
  it on random formulas.
* :func:`dpll_sat` — a tiny recursive DPLL with unit propagation, usable as
  a second independent opinion on slightly larger formulas.

Neither produces proofs; they exist purely for cross-checking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cnf.cnf import Cnf

__all__ = ["brute_force_sat", "dpll_sat", "verify_model"]


def verify_model(cnf: Cnf, model: Dict[int, bool]) -> bool:
    """Check that ``model`` satisfies every clause of ``cnf``."""
    return cnf.is_satisfied_by(model)


def brute_force_sat(cnf: Cnf, max_vars: int = 24) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Exhaustively decide satisfiability; return ``(is_sat, model_or_None)``."""
    variables = sorted(cnf.variables())
    if len(variables) > max_vars:
        raise ValueError(f"brute force limited to {max_vars} variables, "
                         f"got {len(variables)}")
    for bits in range(1 << len(variables)):
        assignment = {var: bool((bits >> i) & 1) for i, var in enumerate(variables)}
        if cnf.is_satisfied_by(assignment):
            return True, assignment
    return False, None


def dpll_sat(cnf: Cnf) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Recursive DPLL with unit propagation (no learning, no heuristics)."""
    clauses = [list(c.literals) for c in cnf.clauses if not c.is_tautology]
    assignment: Dict[int, bool] = {}

    def propagate(clauses_in: List[List[int]],
                  partial: Dict[int, bool]) -> Optional[List[List[int]]]:
        clauses_cur = clauses_in
        while True:
            unit = None
            next_clauses: List[List[int]] = []
            for clause in clauses_cur:
                lits = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    if var in partial:
                        if partial[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        lits.append(lit)
                if satisfied:
                    continue
                if not lits:
                    return None
                if len(lits) == 1 and unit is None:
                    unit = lits[0]
                next_clauses.append(lits)
            if unit is None:
                return next_clauses
            partial[abs(unit)] = unit > 0
            clauses_cur = next_clauses

    def recurse(clauses_cur: List[List[int]], partial: Dict[int, bool]) -> bool:
        simplified = propagate(clauses_cur, partial)
        if simplified is None:
            return False
        if not simplified:
            return True
        lit = simplified[0][0]
        for value in (lit > 0, lit <= 0):
            trial = dict(partial)
            trial[abs(lit)] = value
            if recurse(simplified, trial):
                partial.clear()
                partial.update(trial)
                return True
        return False

    if recurse(clauses, assignment):
        full = {var: assignment.get(var, False) for var in cnf.variables()}
        return True, full
    return False, None
