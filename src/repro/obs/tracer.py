"""Span tracers: the instrumentation handle every layer threads through.

Two implementations share one interface:

* :class:`NullTracer` — the default everywhere.  ``enabled`` is False and
  every method is a no-op returning shared singletons, so an untraced run
  pays one attribute load and a constant context manager per span — no
  event objects, no counter sampling, no I/O.  Hot paths that would build
  attribute dicts guard on ``tracer.enabled`` and skip even that.
* :class:`Tracer` — emits :class:`~repro.obs.events.TraceEvent` objects to
  a :class:`~repro.obs.sinks.Sink`.  Spans nest via a stack; each span
  closes with the *delta* of the deterministic counter source bound with
  :meth:`bind_counters` (the engines bind a sampler over their live
  ``EngineStats``), plus the span's wall clock unless ``wall_clock`` is
  off.  Key spans are mirrored as DEBUG lines on the ``repro.obs.trace``
  logger, so ``-vv`` gives phase visibility without any sink.

Tracers are process-local and never cross a pipe: workers receive *paths*
and build their own ``Tracer(JsonlSink(path))`` (see ``parallel/race.py``
and ``harness/runner.py``).
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, Optional

from .events import BEGIN, END, POINT, TraceEvent
from .sinks import Sink

__all__ = ["NullTracer", "Tracer", "NULL_TRACER"]

_log = logging.getLogger("repro.obs.trace")

#: ``bind_counters`` source: a zero-argument callable returning the current
#: cumulative deterministic counters (name -> int).
CounterSource = Callable[[], Dict[str, int]]


class _NullSpan:
    """The shared no-op context manager ``NullTracer.span`` returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every method is a no-op (see module docstring)."""

    enabled = False

    def bind_counters(self, source: CounterSource) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def point(self, name: str, **attrs) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared default instance — stateless, so one is enough for the process.
NULL_TRACER = NullTracer()


class _Span:
    """Context manager for one live span of a :class:`Tracer`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "_snapshot", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.span_id = tracer._next_span_id
        tracer._next_span_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._emit(TraceEvent(kind=BEGIN, seq=tracer._next_seq(),
                                name=self.name, span_id=self.span_id,
                                parent_id=self.parent_id, attrs=self.attrs))
        tracer._stack.append(self.span_id)
        self._snapshot = tracer._sample()
        self._started = time.monotonic() if tracer.wall_clock else None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.tracer
        tracer._stack.pop()
        now = tracer._sample()
        counters = {key: now[key] - self._snapshot.get(key, 0) for key in now}
        wall = (time.monotonic() - self._started
                if self._started is not None else None)
        tracer._emit(TraceEvent(kind=END, seq=tracer._next_seq(),
                                name=self.name, span_id=self.span_id,
                                parent_id=self.parent_id, counters=counters,
                                wall=wall))
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug("span %s%s closed: %s", self.name,
                       self.attrs or "", counters)
        return False


class Tracer(NullTracer):
    """Emit nested spans and point events to ``sink``.

    ``wall_clock=False`` produces a fully deterministic stream (no ``wall``
    field anywhere); the default keeps wall on end events, which every
    deterministic projection strips (``TraceEvent.deterministic_dict``).
    """

    enabled = True

    def __init__(self, sink: Sink, wall_clock: bool = True) -> None:
        self.sink = sink
        self.wall_clock = wall_clock
        self._seq = 0
        self._next_span_id = 1
        self._stack = []  # open span ids, innermost last
        self._source: Optional[CounterSource] = None

    # -- wiring --------------------------------------------------------- #
    def bind_counters(self, source: CounterSource) -> None:
        """Bind the deterministic counter sampler span deltas come from.

        Rebinding is allowed (each engine run binds its own stats); spans
        opened under one source must close under the same source, which
        holds because engines bind before opening their run span.
        """
        self._source = source

    def _sample(self) -> Dict[str, int]:
        return dict(self._source()) if self._source is not None else {}

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _emit(self, event: TraceEvent) -> None:
        self.sink.emit(event)

    # -- public API ----------------------------------------------------- #
    def span(self, name: str, **attrs) -> _Span:
        """A context manager tracing one nested span."""
        return _Span(self, name, attrs)

    def point(self, name: str, **attrs) -> None:
        """Emit an instantaneous event under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        self._emit(TraceEvent(kind=POINT, seq=self._next_seq(), name=name,
                              parent_id=parent, attrs=attrs))

    def close(self) -> None:
        self.sink.close()
