"""Event sinks: where a tracer's events go.

Two concrete sinks cover the system's needs:

* :class:`ListSink` — in-memory, for tests and programmatic consumers;
* :class:`JsonlSink` — one JSON object per line, flushed per event so a
  worker terminated mid-race still leaves a prefix of complete lines
  behind (plus at most one torn final line, which the readers discard).

Multi-process runs produce one JSONL *segment* per worker;
:func:`merge_segments` concatenates them in the caller's (suite/registry)
order, keeping only complete newline-terminated lines, so a merged trace
is deterministic given deterministic segments.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence

from .events import TraceEvent

__all__ = ["Sink", "ListSink", "JsonlSink", "merge_segments", "read_jsonl",
           "segment_path", "worker_segments"]


class Sink:
    """Sink protocol: receive events, release resources on close."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        pass


class ListSink(Sink):
    """Collect events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)


class JsonlSink(Sink):
    """Append events to ``path``, one sorted-key JSON object per line.

    Keys are sorted and separators minimal so identical event streams
    serialise to identical bytes — the property the cross-process identity
    tests compare on.  Each line is flushed immediately: a race loser
    killed mid-run leaves a valid prefix, not a corrupt file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        json.dump(event.as_dict(), self._handle,
                  sort_keys=True, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def _complete_lines(path: str) -> List[str]:
    """The newline-terminated lines of ``path`` (drops a torn final line)."""
    with open(path, "r", encoding="utf-8") as handle:
        content = handle.read()
    complete = content if content.endswith("\n") else content[:content.rfind("\n") + 1]
    return [line for line in complete.splitlines() if line.strip()]


def merge_segments(paths: Sequence[str], out_path: str,
                   remove: bool = False) -> int:
    """Concatenate JSONL segments into ``out_path`` in the given order.

    Missing segments are skipped (a worker may have produced no events);
    torn final lines (terminated workers) are dropped.  Returns the number
    of lines written.  With ``remove`` the source segments are deleted
    after a successful merge.
    """
    lines: List[str] = []
    present: List[str] = []
    for path in paths:
        if not os.path.exists(path):
            continue
        present.append(path)
        lines.extend(_complete_lines(path))
    parent = os.path.dirname(os.path.abspath(out_path))
    os.makedirs(parent, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    if remove:
        for path in present:
            os.remove(path)
    return len(lines)


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSONL trace into event dicts (tolerant of a torn last line).

    Lines that fail to parse are skipped rather than fatal — the readers
    must cope with segments from terminated workers; strict validation is
    the report tool's ``--validate`` mode.
    """
    events: List[dict] = []
    for line in _complete_lines(path):
        try:
            data = json.loads(line)
        except ValueError:
            continue
        if isinstance(data, dict):
            events.append(data)
    return events


def segment_path(base: str, label: str) -> str:
    """The per-worker segment path convention: ``<base>.<label>.part``."""
    return f"{base}.{label}.part"


def worker_segments(base: Optional[str], labels: Sequence[str]) -> List[str]:
    """Segment paths for ``labels`` in order (empty when tracing is off)."""
    if base is None:
        return []
    return [segment_path(base, label) for label in labels]
