"""The structured trace event: one schema shared by tracer, sinks and report.

A trace is a flat stream of events describing a tree of *spans* (begin/end
pairs) plus *points* (instantaneous markers).  The stream is designed
around the repo's determinism discipline:

* every field except ``wall`` is **deterministic** — identical across
  machines, job counts and reruns, because span counters are deltas of the
  engines' deterministic solver counters (clause additions, conflicts,
  propagations; the currency of ``EngineOptions.max_clauses`` /
  ``max_propagations``);
* ``wall`` (seconds inside a span) is the *only* wall-clock field and is
  dropped by :meth:`TraceEvent.deterministic_dict`, so committed or
  CI-compared projections of a trace never contain machine-dependent
  bytes (mirroring ``records.as_deterministic_dict``).

Events are plain dataclasses with scalar attributes, so they are
pickle-safe like everything else that crosses the repo's process
boundaries, and they round-trip through the JSONL wire form
(:meth:`as_dict` / :meth:`from_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

__all__ = ["SCHEMA_VERSION", "BEGIN", "END", "POINT", "COUNTER_FIELDS",
           "TraceEvent", "SchemaError", "validate_event"]

#: Bump on any incompatible change to the wire form below; the report tool
#: and the CI schema check refuse streams from a different major version.
SCHEMA_VERSION = 1

BEGIN = "begin"
END = "end"
POINT = "point"

_KINDS = (BEGIN, END, POINT)

#: The deterministic counters every engine-bound span closes with (deltas
#: of ``EngineStats``); point events may carry any subset in ``attrs``.
COUNTER_FIELDS = ("sat_calls", "clauses_added", "conflicts", "propagations")

#: Attribute values are restricted to JSON scalars so every event stays
#: pickle- and JSON-round-trippable with no custom encoders.
AttrValue = Union[str, int, float, bool, None]


class SchemaError(ValueError):
    """An event dict does not conform to the trace-event schema."""


@dataclass
class TraceEvent:
    """One trace event (see the module docstring for the determinism split).

    ``seq`` increases strictly within one tracer's stream; a merged
    multi-process trace therefore contains one *segment* per worker, and
    readers detect segment boundaries by ``seq`` resets
    (:func:`repro.obs.report.split_segments`).  ``span_id`` is unique per
    segment, not globally.
    """

    kind: str
    seq: int
    name: str
    span_id: Optional[int] = None     # begin/end only
    parent_id: Optional[int] = None   # enclosing span (None at top level)
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)  # end only
    wall: Optional[float] = None      # end only; never in deterministic form

    # ------------------------------------------------------------------ #
    # Wire form
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """The JSONL wire form (includes ``wall`` when present)."""
        out: Dict[str, object] = {"v": SCHEMA_VERSION, "kind": self.kind,
                                  "seq": self.seq, "name": self.name,
                                  "parent": self.parent_id}
        if self.kind in (BEGIN, END):
            out["id"] = self.span_id
        if self.kind in (BEGIN, POINT):
            out["attrs"] = dict(self.attrs)
        if self.kind == END:
            out["counters"] = dict(self.counters)
            if self.wall is not None:
                out["wall"] = self.wall
        return out

    def deterministic_dict(self) -> Dict[str, object]:
        """The wire form minus the wall clock — the CI-comparable bytes."""
        out = self.as_dict()
        out.pop("wall", None)
        return out

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "TraceEvent":
        """Rebuild an event from its (validated) wire form."""
        validate_event(data)
        return TraceEvent(kind=data["kind"], seq=data["seq"],
                          name=data["name"], span_id=data.get("id"),
                          parent_id=data.get("parent"),
                          attrs=dict(data.get("attrs", {})),
                          counters=dict(data.get("counters", {})),
                          wall=data.get("wall"))


# --------------------------------------------------------------------- #
# Schema validation (used by the report tool's --validate and by CI)
# --------------------------------------------------------------------- #
_REQUIRED = {
    BEGIN: frozenset(("v", "kind", "seq", "name", "parent", "id", "attrs")),
    END: frozenset(("v", "kind", "seq", "name", "parent", "id", "counters")),
    POINT: frozenset(("v", "kind", "seq", "name", "parent", "attrs")),
}
_OPTIONAL = {
    BEGIN: frozenset(),
    END: frozenset(("wall",)),
    POINT: frozenset(),
}


def _fail(message: str) -> None:
    raise SchemaError(message)


def validate_event(data: object) -> None:
    """Raise :class:`SchemaError` unless ``data`` is a valid event dict."""
    if not isinstance(data, dict):
        _fail(f"event must be an object, got {type(data).__name__}")
    if data.get("v") != SCHEMA_VERSION:
        _fail(f"unsupported schema version {data.get('v')!r} "
              f"(expected {SCHEMA_VERSION})")
    kind = data.get("kind")
    if kind not in _KINDS:
        _fail(f"unknown event kind {kind!r}")
    keys = set(data)
    missing = _REQUIRED[kind] - keys
    if missing:
        _fail(f"{kind} event missing keys {sorted(missing)}")
    unknown = keys - _REQUIRED[kind] - _OPTIONAL[kind]
    if unknown:
        _fail(f"{kind} event has unknown keys {sorted(unknown)}")
    if not isinstance(data["seq"], int) or data["seq"] < 0:
        _fail(f"seq must be a non-negative int, got {data['seq']!r}")
    if not isinstance(data["name"], str) or not data["name"]:
        _fail(f"name must be a non-empty string, got {data['name']!r}")
    parent = data["parent"]
    if parent is not None and (not isinstance(parent, int) or parent < 1):
        _fail(f"parent must be null or a positive int, got {parent!r}")
    if kind in (BEGIN, END):
        if not isinstance(data["id"], int) or data["id"] < 1:
            _fail(f"id must be a positive int, got {data['id']!r}")
    if kind in (BEGIN, POINT):
        attrs = data["attrs"]
        if not isinstance(attrs, dict):
            _fail(f"attrs must be an object, got {type(attrs).__name__}")
        for key, value in attrs.items():
            if not isinstance(key, str):
                _fail(f"attr keys must be strings, got {key!r}")
            if value is not None and not isinstance(value, (str, int, float, bool)):
                _fail(f"attr {key!r} must be a JSON scalar, "
                      f"got {type(value).__name__}")
    if kind == END:
        counters = data["counters"]
        if not isinstance(counters, dict):
            _fail(f"counters must be an object, got {type(counters).__name__}")
        for key, value in counters.items():
            if not isinstance(key, str):
                _fail(f"counter keys must be strings, got {key!r}")
            if not isinstance(value, int) or isinstance(value, bool):
                _fail(f"counter {key!r} must be an int, got {value!r}")
        wall = data.get("wall")
        if wall is not None and not isinstance(wall, (int, float)):
            _fail(f"wall must be a number, got {wall!r}")
