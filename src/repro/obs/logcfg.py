"""CLI logging configuration for the ``repro`` logger hierarchy.

Every module in the package logs to a ``repro.*`` logger; the package root
installs a ``NullHandler`` (library etiquette — silent by default, no
"No handlers could be found" warnings).  The CLI maps its verbosity flags
through :func:`configure_logging`: ``-v`` → INFO, ``-vv`` → DEBUG, both on
stderr so machine-readable stdout (verdicts, stats) stays clean.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging"]

#: Marker attribute identifying the handler this module installed, so
#: repeated configuration replaces it instead of stacking duplicates.
_HANDLER_TAG = "_repro_cli_handler"


def configure_logging(verbosity: int, stream: Optional[TextIO] = None) -> None:
    """Install (or remove) the CLI's stderr handler on the ``repro`` root.

    ``verbosity``: 0 removes the handler (library default — silent),
    1 selects INFO, 2+ selects DEBUG.  Idempotent: calling again replaces
    the previous handler, so tests and long-lived processes can reconfigure
    freely.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
            handler.close()
    if verbosity <= 0:
        root.setLevel(logging.NOTSET)
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(name)s %(levelname)s: %(message)s"))
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    root.setLevel(level)
