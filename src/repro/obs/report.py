"""Trace consumer: ``python -m repro.obs.report trace.jsonl``.

Reads one or more JSONL traces (single-run files from ``--events``, merged
suite traces from ``HarnessConfig.events_dir``) and renders:

* a **per-phase breakdown** — for every named phase span, the *self*
  counter totals (the span's deltas minus its child spans', so nested
  phases are never double-counted) plus self wall clock;
* a **per-bound timeline** — the total counters of every ``bound`` span in
  stream order, grouped per run;
* the **top-N hardest SAT calls** — ``sat_call`` point events ranked by
  conflicts, with their enclosing phase/bound/engine context.

Merged multi-process traces contain one *segment* per worker; segments are
detected by ``seq`` resets and span ids are scoped per segment, so merged
``--jobs N`` traces read identically to their serial counterparts.

``--validate`` checks every line strictly against the event schema
(:func:`repro.obs.events.validate_event`) — the CI smoke gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .events import BEGIN, END, POINT, COUNTER_FIELDS, SchemaError, validate_event
from .sinks import read_jsonl

__all__ = ["split_segments", "build_spans", "Span", "phase_breakdown",
           "attribution", "render_report", "main"]

#: Structural spans organise the tree (run → bound → phase) and are not
#: themselves phases: their self-effort should be ~0, and the attribution
#: metric measures exactly how much effort escapes the named phases into
#: them.
STRUCTURAL_SPANS = frozenset(("run", "bound"))


class Span:
    """One reconstructed span: identity, attrs, totals, children."""

    __slots__ = ("key", "name", "attrs", "parent_key", "counters", "wall",
                 "children", "order")

    def __init__(self, key, name, attrs, parent_key, order):
        self.key = key                  # (segment_index, span_id)
        self.name = name
        self.attrs = attrs
        self.parent_key = parent_key
        self.counters: Optional[Dict[str, int]] = None  # None = never closed
        self.wall: Optional[float] = None
        self.children: List["Span"] = []
        self.order = order              # (segment_index, begin seq)

    def counter(self, key: str) -> int:
        return (self.counters or {}).get(key, 0)

    def self_counter(self, key: str) -> int:
        """This span's counter minus its closed children's (never negative)."""
        if self.counters is None:
            return 0
        return max(0, self.counter(key)
                   - sum(child.counter(key) for child in self.children))

    def self_wall(self) -> Optional[float]:
        if self.wall is None:
            return None
        children = sum(child.wall or 0.0 for child in self.children)
        return max(0.0, self.wall - children)


def split_segments(events: Sequence[dict]) -> List[List[dict]]:
    """Split a merged stream into per-worker segments at ``seq`` resets."""
    segments: List[List[dict]] = []
    last_seq = None
    for event in events:
        seq = event.get("seq", 0)
        if last_seq is None or seq <= last_seq:
            segments.append([])
        segments[-1].append(event)
        last_seq = seq
    return segments


def build_spans(events: Sequence[dict]
                ) -> Tuple[Dict[tuple, Span], List[Tuple[tuple, dict]]]:
    """Reconstruct the span forest of a (possibly merged) stream.

    Returns ``(spans, points)``: spans keyed by ``(segment, id)``; points as
    ``(parent_key_or_None, event_dict)`` in stream order.  Spans without an
    end event (terminated workers) stay open — ``counters is None`` — and
    contribute nothing to any total.
    """
    spans: Dict[tuple, Span] = {}
    points: List[Tuple[tuple, dict]] = []
    for segment_index, segment in enumerate(split_segments(events)):
        for event in segment:
            kind = event.get("kind")
            parent = event.get("parent")
            parent_key = (segment_index, parent) if parent is not None else None
            if kind == BEGIN:
                key = (segment_index, event["id"])
                span = Span(key, event.get("name", "?"),
                            event.get("attrs", {}), parent_key,
                            (segment_index, event.get("seq", 0)))
                spans[key] = span
                if parent_key is not None and parent_key in spans:
                    spans[parent_key].children.append(span)
            elif kind == END:
                key = (segment_index, event["id"])
                span = spans.get(key)
                if span is not None:
                    span.counters = event.get("counters", {})
                    span.wall = event.get("wall")
            elif kind == POINT:
                points.append((parent_key, event))
    return spans, points


# --------------------------------------------------------------------- #
# Analyses
# --------------------------------------------------------------------- #
def _ancestors(span: Span, spans: Dict[tuple, Span]):
    current = span
    while current.parent_key is not None:
        current = spans.get(current.parent_key)
        if current is None:
            return
        yield current


def _enclosing(spans: Dict[tuple, Span], key: Optional[tuple],
               want: str) -> Optional[Span]:
    """The innermost span at/above ``key`` whose name is ``want``."""
    if key is None or key not in spans:
        return None
    span = spans[key]
    if span.name == want:
        return span
    for ancestor in _ancestors(span, spans):
        if ancestor.name == want:
            return ancestor
    return None


def phase_breakdown(spans: Dict[tuple, Span]) -> List[dict]:
    """Aggregate self-effort per phase name, heaviest clause work first."""
    rows: Dict[str, dict] = {}
    for span in spans.values():
        if span.name in STRUCTURAL_SPANS or span.counters is None:
            continue
        row = rows.setdefault(span.name, {"phase": span.name, "spans": 0,
                                          "wall": 0.0, "has_wall": False,
                                          **{k: 0 for k in COUNTER_FIELDS}})
        row["spans"] += 1
        for key in COUNTER_FIELDS:
            row[key] += span.self_counter(key)
        self_wall = span.self_wall()
        if self_wall is not None:
            row["wall"] += self_wall
            row["has_wall"] = True
    return sorted(rows.values(),
                  key=lambda r: (-r["clauses_added"], -r["propagations"],
                                 r["phase"]))


def totals(spans: Dict[tuple, Span]) -> Dict[str, int]:
    """Whole-stream counter totals: the sum over closed top-level spans."""
    out = {key: 0 for key in COUNTER_FIELDS}
    for span in spans.values():
        if span.parent_key is None and span.counters is not None:
            for key in COUNTER_FIELDS:
                out[key] += span.counter(key)
    return out


def attribution(spans: Dict[tuple, Span],
                counter: str = "clauses_added") -> Tuple[int, int, float]:
    """How much of ``counter`` the named phase spans account for.

    Returns ``(attributed, total, fraction)`` where *attributed* sums the
    self-deltas of every non-structural span and *total* sums the
    top-level spans.  The acceptance bar for this subsystem is ≥ 0.95 on
    ``clauses_added`` — effort escaping into structural spans means an
    uninstrumented code path.
    """
    attributed = sum(span.self_counter(counter) for span in spans.values()
                     if span.name not in STRUCTURAL_SPANS)
    total = totals(spans)[counter]
    fraction = (attributed / total) if total else 1.0
    return attributed, total, fraction


def bound_timeline(spans: Dict[tuple, Span]) -> List[dict]:
    """One row per closed ``bound`` span, in stream order."""
    rows = []
    for span in sorted(spans.values(), key=lambda s: s.order):
        if span.name != "bound" or span.counters is None:
            continue
        run = next((a for a in _ancestors(span, spans) if a.name == "run"), None)
        rows.append({
            "engine": (run.attrs.get("engine") if run else None) or "?",
            "model": (run.attrs.get("model") if run else None) or "?",
            "bound": span.attrs.get("bound", "?"),
            "wall": span.wall,
            **{key: span.counter(key) for key in COUNTER_FIELDS},
        })
    return rows


def hardest_sat_calls(spans: Dict[tuple, Span],
                      points: List[Tuple[tuple, dict]],
                      top: int = 10) -> List[dict]:
    """The ``top`` hardest ``sat_call`` points by conflicts, with context."""
    calls = []
    for segment_order, (parent_key, event) in enumerate(points):
        if event.get("name") != "sat_call":
            continue
        attrs = event.get("attrs", {})
        phase = None
        if parent_key is not None and parent_key in spans:
            span = spans[parent_key]
            chain = [span] + list(_ancestors(span, spans))
            phase = next((s.name for s in chain
                          if s.name not in STRUCTURAL_SPANS), None)
        bound_span = _enclosing(spans, parent_key, "bound")
        run_span = _enclosing(spans, parent_key, "run")
        calls.append({
            "conflicts": attrs.get("conflicts", 0) or 0,
            "propagations": attrs.get("propagations", 0) or 0,
            "clauses_added": attrs.get("clauses_added", 0) or 0,
            "phase": phase or "?",
            "bound": bound_span.attrs.get("bound") if bound_span else None,
            "engine": run_span.attrs.get("engine") if run_span else None,
            "model": run_span.attrs.get("model") if run_span else None,
            "_order": segment_order,
        })
    calls.sort(key=lambda c: (-c["conflicts"], -c["propagations"], c["_order"]))
    return calls[:top]


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _wall(value: Optional[float]) -> str:
    return f"{value:.3f}" if value is not None else "-"


def render_report(events: Sequence[dict], top: int = 10,
                  max_bounds: int = 40) -> str:
    """Render the full three-section report for one event stream."""
    spans, points = build_spans(events)
    sections: List[str] = []

    phases = phase_breakdown(spans)
    header = ["phase", "spans"] + list(COUNTER_FIELDS) + ["wall_s"]
    rows = [[p["phase"], p["spans"]] + [p[k] for k in COUNTER_FIELDS]
            + [_wall(p["wall"] if p["has_wall"] else None)] for p in phases]
    sections.append("== Per-phase breakdown (self effort) ==\n"
                    + (_table(header, rows) if rows else "(no phase spans)"))

    attributed, total, fraction = attribution(spans)
    sections.append(f"phase attribution: {attributed}/{total} clauses_added "
                    f"({fraction:.1%}) in named phase spans")

    timeline = bound_timeline(spans)
    shown = timeline[:max_bounds]
    header = ["engine", "model", "bound"] + list(COUNTER_FIELDS) + ["wall_s"]
    rows = [[b["engine"], b["model"], b["bound"]]
            + [b[k] for k in COUNTER_FIELDS] + [_wall(b["wall"])]
            for b in shown]
    timeline_text = _table(header, rows) if rows else "(no bound spans)"
    if len(timeline) > len(shown):
        timeline_text += (f"\n... {len(timeline) - len(shown)} more bound "
                          f"rows (rerun with --max-bounds 0 for all)")
    sections.append("== Per-bound timeline (total effort) ==\n" + timeline_text)

    calls = hardest_sat_calls(spans, points, top=top)
    header = ["engine", "model", "phase", "bound", "conflicts",
              "propagations", "clauses_added"]
    rows = [[c["engine"] or "?", c["model"] or "?", c["phase"],
             c["bound"] if c["bound"] is not None else "-", c["conflicts"],
             c["propagations"], c["clauses_added"]] for c in calls]
    sections.append(f"== Top {len(calls)} hardest SAT calls ==\n"
                    + (_table(header, rows) if rows else "(no sat_call events)"))

    return "\n\n".join(sections) + "\n"


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render per-phase / per-bound / per-call breakdowns of "
                    "a repro trace (JSONL from --events or events_dir).")
    parser.add_argument("files", nargs="+", metavar="TRACE",
                        help="JSONL trace file(s)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="hardest SAT calls to show (default: 10)")
    parser.add_argument("--max-bounds", type=int, default=40, metavar="N",
                        help="timeline rows to show, 0 = all (default: 40)")
    parser.add_argument("--validate", action="store_true",
                        help="strictly validate every event against the "
                             "schema and exit (non-zero on any violation)")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        try:
            events = read_jsonl(path)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.validate:
            bad = 0
            for index, event in enumerate(events):
                try:
                    validate_event(event)
                except SchemaError as exc:
                    print(f"{path}:{index + 1}: {exc}", file=sys.stderr)
                    bad += 1
            if bad:
                status = 1
            else:
                print(f"{path}: {len(events)} events valid "
                      f"(schema v{events[0]['v'] if events else '?'})")
            continue
        if len(args.files) > 1:
            print(f"==== {path} ====")
        max_bounds = args.max_bounds if args.max_bounds > 0 else len(events)
        print(render_report(events, top=args.top, max_bounds=max_bounds),
              end="")
    return status


if __name__ == "__main__":
    sys.exit(main())
