"""Observability: structured span tracing, event sinks, logging, reporting.

The subsystem has four small parts:

* :mod:`repro.obs.events` — the :class:`TraceEvent` schema (deterministic
  counters, optional wall clock) and its validator;
* :mod:`repro.obs.tracer` — :class:`Tracer` (nested spans + point events)
  and the no-op :class:`NullTracer` default;
* :mod:`repro.obs.sinks` — :class:`JsonlSink` / :class:`ListSink` plus the
  cross-process segment merge;
* :mod:`repro.obs.report` — the ``python -m repro.obs.report`` consumer
  (imported lazily; it is a CLI tool, not a library dependency).

:func:`configure_logging` wires the CLI's ``-v/-vv`` to the ``repro.*``
logger hierarchy.
"""

from .events import (BEGIN, COUNTER_FIELDS, END, POINT, SCHEMA_VERSION,
                     SchemaError, TraceEvent, validate_event)
from .logcfg import configure_logging
from .sinks import (JsonlSink, ListSink, Sink, merge_segments, read_jsonl,
                    segment_path, worker_segments)
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "BEGIN",
    "END",
    "POINT",
    "COUNTER_FIELDS",
    "SCHEMA_VERSION",
    "SchemaError",
    "TraceEvent",
    "validate_event",
    "configure_logging",
    "Sink",
    "ListSink",
    "JsonlSink",
    "merge_segments",
    "read_jsonl",
    "segment_path",
    "worker_segments",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
]
