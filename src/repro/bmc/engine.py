"""Iterative-deepening BMC falsification engine.

This is the plain bounded model checker the paper treats as the baseline
activity ITPSEQs are so close to: unroll to increasing depths, look for a
counterexample, stop at the first failing depth or at the depth/resource
limit.  It is used directly by the falsification example, by the CBA
abstraction loop (on the abstract model) and by several integration tests.

Two execution modes are offered:

* **incremental** (the default) — one persistent solver for the whole run
  via :class:`~repro.bmc.incremental.IncrementalUnroller`: O(k) total
  encoding work, learned clauses / activities / phases carried across
  depths;
* **fresh-solver** (``incremental=False``) — the original monolithic
  behaviour, one solver and one full re-encoding per depth.  Kept both as
  the reference for equivalence testing and because it is the only mode
  compatible with proof logging.

Both modes produce identical verdicts, failure depths and replayable
traces; ``benchmarks/test_bench_incremental.py`` asserts the O(k²) → O(k)
clause-work drop.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aig.model import Model
from ..sat.solver import CdclSolver
from ..sat.types import Budget, SatResult, SolverStats
from .cex import Trace
from .checks import BmcCheckKind, build_check
from .incremental import IncrementalUnroller
from .unroll import Unroller

__all__ = ["BmcResult", "BmcEngine"]

_log = logging.getLogger("repro.bmc.engine")


@dataclass
class BmcResult:
    """Outcome of a bounded falsification run.

    ``status`` is one of ``"fail"`` (counterexample found), ``"no_cex"``
    (no failure up to ``max_depth``) or ``"unknown"`` (resource limit hit).
    ``clause_additions`` / ``conflicts`` aggregate the solver work across
    the whole run (all solvers in fresh-solver mode, the single persistent
    one in incremental mode); ``per_depth_clauses`` attributes the clause
    additions to the depth whose check triggered them.
    """

    status: str
    depth: Optional[int] = None
    trace: Optional[Trace] = None
    checked_depth: int = 0
    sat_calls: int = 0
    time_seconds: float = 0.0
    per_depth_times: Dict[int, float] = field(default_factory=dict)
    clause_additions: int = 0
    conflicts: int = 0
    per_depth_clauses: Dict[int, int] = field(default_factory=dict)

    @property
    def is_failure(self) -> bool:
        return self.status == "fail"


class BmcEngine:
    """Depth-by-depth bounded model checking.

    With ``preprocess=True`` (the default) the engine unrolls the model
    produced by the preprocessing pipeline (:mod:`repro.preprocess`) and
    lifts any counterexample back to the original variables before
    validating and reporting it; failure depths and verdicts are identical
    either way.  The CNF-level pass is not consulted — BMC has no
    containment checks, so only the model passes apply (by default COI,
    sweeping, rewriting and fraiging; override with ``preprocess_passes``).
    """

    #: Default pipeline: every model pass, no encoding-time CNF pass.
    DEFAULT_PASSES = ("coi", "sweep", "coi", "rewrite", "fraig")

    def __init__(self, model: Model, check_kind: BmcCheckKind = BmcCheckKind.ASSUME,
                 validate_traces: bool = True, incremental: bool = True,
                 preprocess: bool = True,
                 preprocess_passes: Optional[tuple] = None,
                 tracer=None, share=None) -> None:
        from ..obs.tracer import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Live counter snapshot sampled by the tracer on span boundaries.
        self._counters = {"sat_calls": 0, "clauses_added": 0,
                          "conflicts": 0, "propagations": 0,
                          "lemmas_tx": 0, "lemmas_rx": 0,
                          "lemmas_retracted": 0, "share_solves_skipped": 0}
        self.tracer.bind_counters(lambda: self._counters)
        self.source_model = model
        self._preprocess = None
        self._preprocess_seconds = 0.0
        if preprocess:
            from ..preprocess.passes import build_pipeline  # deferred: cycle

            # Model passes only: BMC has no containment checks, so arming
            # the encoding-time CNF pass would be dead work.
            started = time.monotonic()
            with self.tracer.span("preprocess", engine="bmc",
                                  model=model.name):
                self._preprocess = build_pipeline(
                    self.DEFAULT_PASSES if preprocess_passes is None
                    else preprocess_passes).run(model, tracer=self.tracer)
            self._preprocess_seconds = time.monotonic() - started
            self.model = self._preprocess.model
        else:
            self.model = model
        self.check_kind = check_kind
        self.validate_traces = validate_traces
        self.incremental = incremental
        # Cooperative lemma sharing (depth-only policy; incremental mode).
        self.share = share
        self._share_validator = None
        self._share_depth = -1
        self._share_published_depth = -1
        if self.share is not None:
            self._share_attach()

    # ------------------------------------------------------------------ #
    # Cooperative lemma sharing (depth facts only)
    # ------------------------------------------------------------------ #
    def _share_attach(self) -> None:
        """Fingerprint handshake + import validator, as UmcEngine does.

        BMC only ever consumes and produces "no counterexample up to d"
        facts: a covered depth's solve is skipped outright (the foreign
        refutation already answered it) and its frame encodings are
        deferred until the next genuinely attempted depth, which is why
        sharing is wired into the incremental mode only.
        """
        from ..share.adapt import ImportValidator
        from ..share.lemma import model_fingerprint

        fingerprint = model_fingerprint(self.model)
        if not self.share.register_fingerprint(fingerprint):
            _log.warning("bmc: model fingerprint mismatch with the share "
                         "bus — sharing disabled for this run")
            self.share = None
            return
        self._share_validator = ImportValidator(self.model)
        self._share_validator.prepare()

    def _share_sync(self, depth: int) -> None:
        if self.share is None:
            return
        from ..share.lemma import DepthLemma

        accepted: List[int] = []
        for shared in self.share.sync(depth):
            if self._share_validator is not None:
                reason = self._share_validator.reject_reason(shared.lemma)
                if reason is not None:
                    self._counters["lemmas_retracted"] += 1
                    if self.tracer.enabled:
                        self.tracer.point("share_reject", seq=shared.seq,
                                          reason=reason)
                    continue
            if not isinstance(shared.lemma, DepthLemma):
                continue  # not applicable here: not accepted, not an error
            self._share_depth = max(self._share_depth, shared.lemma.depth)
            self._counters["lemmas_rx"] += 1
            accepted.append(shared.seq)
        if accepted:
            self.share.commit(depth, accepted)

    def _share_publish_depth(self, depth: int) -> None:
        if self.share is None or depth <= self._share_published_depth:
            return
        from ..share.lemma import DepthLemma

        self._share_published_depth = depth
        self.share.publish(DepthLemma(depth=depth))
        self._counters["lemmas_tx"] += 1

    def check_initial_states(self) -> Optional[Trace]:
        """Return a depth-0 counterexample when an initial state is already bad."""
        trace, _ = self._initial_check()
        if trace is None:
            return None
        return self._finish_trace(trace)

    def _initial_check(self) -> tuple:
        """Depth-0 check on a throwaway solver; returns ``(trace, stats)``."""
        solver = CdclSolver()
        unroller = Unroller(self.model, solver)
        unroller.assert_initial_state(partition=1)
        unroller.assert_bad(0, partition=1)
        if self.model.constraints:
            unroller.assert_constraints_at(0, partition=1)
        answer = solver.solve()
        trace = unroller.extract_trace(0) if answer is SatResult.SAT else None
        return trace, solver.stats

    def run(self, max_depth: int, time_limit: Optional[float] = None,
            conflict_limit: Optional[int] = None) -> BmcResult:
        """Search for a counterexample of length at most ``max_depth``."""
        with self.tracer.span("run", engine="bmc", model=self.model.name):
            if self.incremental:
                result = self._run_incremental(max_depth, time_limit,
                                               conflict_limit)
            else:
                result = self._run_monolithic(max_depth, time_limit,
                                              conflict_limit)
        if self.tracer.enabled:
            self.tracer.point("verdict", engine="bmc",
                              model=self.model.name, status=result.status,
                              depth=result.depth)
        return result

    # ------------------------------------------------------------------ #
    # Incremental mode: one persistent solver for the whole deepening run
    # ------------------------------------------------------------------ #
    def _run_incremental(self, max_depth: int, time_limit: Optional[float],
                         conflict_limit: Optional[int]) -> BmcResult:
        # Construction-time preprocessing counts against this run's clock
        # and budget (see UmcEngine.run for the same policy).
        start = time.monotonic() - self._preprocess_seconds
        result = BmcResult(status="no_cex")
        unroller = IncrementalUnroller(self.model, check_kind=self.check_kind)

        for depth in range(max_depth + 1):
            # Depth 0 (the initial-states check) runs unconditionally and
            # unbudgeted, mirroring the fresh-solver mode.
            remaining = None
            depth_start = time.monotonic()
            if depth > 0:
                self._share_sync(depth)
                if depth <= self._share_depth:
                    # A foreign "no counterexample ≤ d" fact covers this
                    # depth: skip its solve and defer its frame encoding
                    # (extend_to below catches up at the next live depth).
                    self._counters["share_solves_skipped"] += 1
                    result.checked_depth = depth
                    if self.tracer.enabled:
                        self.tracer.point("share_skip", bound=depth)
                    continue
                if time_limit is not None:
                    remaining = time_limit - (time.monotonic() - start)
                    if remaining <= 0:
                        result.status = "unknown"
                        result.checked_depth = depth - 1
                        break
            with self.tracer.span("bound", bound=depth):
                if depth > 0:
                    # Frame encoding is part of the depth's cost, matching
                    # the fresh-solver mode where build_check runs inside
                    # the timer.
                    unroller.extend_to(depth)
                budget = (Budget(max_conflicts=conflict_limit,
                                 max_time=remaining)
                          if depth > 0 else None)
                with self.tracer.span("cex_search"):
                    answer = unroller.solve(budget=budget)
                    result.sat_calls += 1
                    self._account(result, depth, unroller.last_call_stats)
                result.per_depth_times[depth] = time.monotonic() - depth_start
                if answer is SatResult.UNKNOWN:
                    result.status = "unknown"
                    result.checked_depth = depth - 1
                    break
                if answer is SatResult.SAT:
                    trace = self._finish_trace(unroller.extract_trace())
                    result.status = "fail"
                    result.depth = depth
                    result.trace = trace
                    result.checked_depth = depth
                    break
                result.checked_depth = depth
                self._share_publish_depth(depth)
        result.time_seconds = time.monotonic() - start
        return result

    # ------------------------------------------------------------------ #
    # Fresh-solver mode: the original monolithic re-encoding per depth
    # ------------------------------------------------------------------ #
    def _run_monolithic(self, max_depth: int, time_limit: Optional[float],
                        conflict_limit: Optional[int]) -> BmcResult:
        start = time.monotonic() - self._preprocess_seconds
        result = BmcResult(status="no_cex")

        trace, initial_stats = self._initial_check()
        result.sat_calls += 1
        self._account(result, 0, initial_stats)
        if trace is not None:
            result.status = "fail"
            result.depth = 0
            result.trace = self._finish_trace(trace)
            result.time_seconds = time.monotonic() - start
            return result

        for depth in range(1, max_depth + 1):
            remaining = None
            if time_limit is not None:
                remaining = time_limit - (time.monotonic() - start)
                if remaining <= 0:
                    result.status = "unknown"
                    result.checked_depth = depth - 1
                    break
            depth_start = time.monotonic()
            with self.tracer.span("bound", bound=depth):
                with self.tracer.span("cex_search"):
                    unroller = build_check(self.check_kind, self.model, depth,
                                           proof_logging=False)
                    budget = Budget(max_conflicts=conflict_limit,
                                    max_time=remaining)
                    answer = unroller.solver.solve(budget=budget)
                    result.sat_calls += 1
                    self._account(result, depth, unroller.solver.stats)
                result.per_depth_times[depth] = time.monotonic() - depth_start
                if answer is SatResult.UNKNOWN:
                    result.status = "unknown"
                    result.checked_depth = depth - 1
                    break
                if answer is SatResult.SAT:
                    trace = self._finish_trace(unroller.extract_trace(depth))
                    result.status = "fail"
                    result.depth = depth
                    result.trace = trace
                    result.checked_depth = depth
                    break
                result.checked_depth = depth
        result.time_seconds = time.monotonic() - start
        return result

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _account(self, result: BmcResult, depth: int,
                 stats: SolverStats) -> None:
        result.clause_additions += stats.clauses_added
        result.conflicts += stats.conflicts
        result.per_depth_clauses[depth] = stats.clauses_added
        self._counters["sat_calls"] += 1
        self._counters["clauses_added"] += stats.clauses_added
        self._counters["conflicts"] += stats.conflicts
        self._counters["propagations"] += stats.propagations
        if self.tracer.enabled:
            self.tracer.point("sat_call", conflicts=stats.conflicts,
                              propagations=stats.propagations,
                              clauses_added=stats.clauses_added)

    def _finish_trace(self, trace: Trace) -> Trace:
        """Lift a (possibly reduced-model) trace back and validate it."""
        if self._preprocess is not None:
            trace = self._preprocess.lift_trace(trace)
        if self.validate_traces and not trace.check(self.source_model):
            raise RuntimeError(
                "BMC produced a trace that does not replay on the concrete model")
        return trace
