"""Iterative-deepening BMC falsification engine.

This is the plain bounded model checker the paper treats as the baseline
activity ITPSEQs are so close to: unroll to increasing depths, look for a
counterexample, stop at the first failing depth or at the depth/resource
limit.  It is used directly by the falsification example, by the CBA
abstraction loop (on the abstract model) and by several integration tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aig.model import Model
from ..sat.solver import CdclSolver
from ..sat.types import Budget, SatResult
from .cex import Trace
from .checks import BmcCheckKind, build_check
from .unroll import Unroller

__all__ = ["BmcResult", "BmcEngine"]


@dataclass
class BmcResult:
    """Outcome of a bounded falsification run.

    ``status`` is one of ``"fail"`` (counterexample found), ``"no_cex"``
    (no failure up to ``max_depth``) or ``"unknown"`` (resource limit hit).
    """

    status: str
    depth: Optional[int] = None
    trace: Optional[Trace] = None
    checked_depth: int = 0
    sat_calls: int = 0
    time_seconds: float = 0.0
    per_depth_times: Dict[int, float] = field(default_factory=dict)

    @property
    def is_failure(self) -> bool:
        return self.status == "fail"


class BmcEngine:
    """Depth-by-depth bounded model checking."""

    def __init__(self, model: Model, check_kind: BmcCheckKind = BmcCheckKind.ASSUME,
                 validate_traces: bool = True) -> None:
        self.model = model
        self.check_kind = check_kind
        self.validate_traces = validate_traces

    def check_initial_states(self) -> Optional[Trace]:
        """Return a depth-0 counterexample when an initial state is already bad."""
        solver = CdclSolver()
        unroller = Unroller(self.model, solver)
        unroller.assert_initial_state(partition=1)
        unroller.assert_bad(0, partition=1)
        if self.model.constraints:
            unroller.assert_constraints_at(0, partition=1)
        if solver.solve() is SatResult.SAT:
            return unroller.extract_trace(0)
        return None

    def run(self, max_depth: int, time_limit: Optional[float] = None,
            conflict_limit: Optional[int] = None) -> BmcResult:
        """Search for a counterexample of length at most ``max_depth``."""
        start = time.monotonic()
        result = BmcResult(status="no_cex")

        trace = self.check_initial_states()
        result.sat_calls += 1
        if trace is not None:
            self._validate(trace)
            result.status = "fail"
            result.depth = 0
            result.trace = trace
            result.time_seconds = time.monotonic() - start
            return result

        for depth in range(1, max_depth + 1):
            remaining = None
            if time_limit is not None:
                remaining = time_limit - (time.monotonic() - start)
                if remaining <= 0:
                    result.status = "unknown"
                    break
            depth_start = time.monotonic()
            unroller = build_check(self.check_kind, self.model, depth,
                                   proof_logging=False)
            budget = Budget(max_conflicts=conflict_limit, max_time=remaining)
            answer = unroller.solver.solve(budget=budget)
            result.sat_calls += 1
            result.per_depth_times[depth] = time.monotonic() - depth_start
            if answer is SatResult.UNKNOWN:
                result.status = "unknown"
                result.checked_depth = depth - 1
                break
            if answer is SatResult.SAT:
                trace = unroller.extract_trace(depth)
                self._validate(trace)
                result.status = "fail"
                result.depth = depth
                result.trace = trace
                result.checked_depth = depth
                break
            result.checked_depth = depth
        result.time_seconds = time.monotonic() - start
        return result

    def _validate(self, trace: Trace) -> None:
        if self.validate_traces and not trace.check(self.model):
            raise RuntimeError(
                "BMC produced a trace that does not replay on the concrete model")
