"""Counterexample traces.

A :class:`Trace` is the witness returned by a failing BMC or UMC run: the
initial latch values plus one primary-input valuation per time frame.  The
class can *replay* itself on a concrete :class:`~repro.aig.model.Model`
through the sequential simulator, which is how the engines (and the
test-suite) validate that a reported failure is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..aig.model import Model
from ..aig.simulate import lit_value, simulate_comb

__all__ = ["Trace"]


@dataclass
class Trace:
    """A finite input trace ending in a property violation.

    Attributes
    ----------
    initial_state:
        Values for every latch variable at time 0.
    inputs:
        One mapping (input variable -> bool) per time frame, frames
        ``0 .. depth``; the violation is observed at frame ``depth``.
    depth:
        The frame at which the bad literal is asserted.
    """

    initial_state: Dict[int, bool]
    inputs: List[Dict[int, bool]]
    depth: int

    def __post_init__(self) -> None:
        if len(self.inputs) < self.depth + 1:
            # Pad with all-zero input frames; the solver may not have had to
            # assign inputs in frames that do not influence the violation.
            self.inputs = list(self.inputs) + [
                {} for _ in range(self.depth + 1 - len(self.inputs))]

    def input_at(self, frame: int) -> Dict[int, bool]:
        return self.inputs[frame] if frame < len(self.inputs) else {}

    def states(self, model: Model) -> List[Dict[int, bool]]:
        """Replay the trace; return the latch valuation at every frame 0..depth."""
        state = dict(self.initial_state)
        for latch in model.latches:
            state.setdefault(latch.var, False)
        result = [dict(state)]
        for frame in range(self.depth):
            state = model.next_state(state, self.input_at(frame))
            result.append(dict(state))
        return result

    def check(self, model: Model) -> bool:
        """Return ``True`` when the trace is a genuine counterexample.

        The trace must start in a legal initial state, respect the model's
        invariant constraints at every frame and assert the bad literal at
        frame ``depth``.
        """
        for latch in model.latches:
            if latch.init is None:
                continue
            if self.initial_state.get(latch.var, False) != bool(latch.init):
                return False
        states = self.states(model)
        for frame, state in enumerate(states):
            if not model.constraints_hold(state, self.input_at(frame)):
                return False
        return model.is_bad_state(states[self.depth], self.input_at(self.depth))

    def __len__(self) -> int:
        return self.depth + 1
