"""The three BMC check formulations of Section II-A / III.

For a bound ``k`` and a model (S₀, T, p) the paper distinguishes:

* ``bound-k``        — bmcᵏ_B = S₀ ∧ Tᵏ ∧ ⋁_{i=1..k} ¬p(Vⁱ)
* ``exact-k``        — bmcᵏ_E = S₀ ∧ Tᵏ ∧ ¬p(Vᵏ)
* ``exact-assume-k`` — bmcᵏ_A = S₀ ∧ Tᵏ ∧ ⋀_{i=1..k-1} p(Vⁱ) ∧ ¬p(Vᵏ)

Standard interpolation requires the bound formulation (the B term must
forbid failures at *any* depth); interpolation sequences work with exact or
assume checks, and the paper's Fig. 7 experiment compares the two.

Each builder loads the formula into a fresh (or caller-supplied) solver via
an :class:`~repro.bmc.unroll.Unroller`, labelling clauses with the Γ
partition indices described there, and returns the unroller for cut-map /
trace extraction.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..aig.model import Model
from ..sat.solver import CdclSolver
from .unroll import Unroller

__all__ = ["BmcCheckKind", "build_check", "build_bound_check", "build_exact_check",
           "build_assume_check"]


class BmcCheckKind(enum.Enum):
    """Which of the three BMC formulations to build."""

    BOUND = "bound"
    EXACT = "exact"
    ASSUME = "assume"


def _prepare(model: Model, k: int, solver: Optional[CdclSolver],
             proof_logging: bool) -> Unroller:
    if k < 1:
        raise ValueError(f"BMC bound must be >= 1, got {k}")
    if solver is None:
        solver = CdclSolver(proof_logging=proof_logging)
    unroller = Unroller(model, solver)
    return unroller


def _unroll_transitions(unroller: Unroller, k: int,
                        initial: Optional[Callable[[Unroller], None]]) -> None:
    """Emit S₀ (partition 1) and the k transitions (partitions 1..k)."""
    if initial is None:
        unroller.assert_initial_state(partition=1)
    else:
        initial(unroller)
    for frame in range(k):
        unroller.add_transition(frame, partition=frame + 1)


def build_exact_check(model: Model, k: int, solver: Optional[CdclSolver] = None,
                      proof_logging: bool = True,
                      initial: Optional[Callable[[Unroller], None]] = None) -> Unroller:
    """Build bmcᵏ_E: failure exactly at frame ``k`` (earlier frames unconstrained)."""
    unroller = _prepare(model, k, solver, proof_logging)
    _unroll_transitions(unroller, k, initial)
    unroller.assert_bad(k, partition=k + 1)
    if model.constraints:
        unroller.assert_constraints_at(k, partition=k + 1)
    return unroller


def build_assume_check(model: Model, k: int, solver: Optional[CdclSolver] = None,
                       proof_logging: bool = True,
                       initial: Optional[Callable[[Unroller], None]] = None) -> Unroller:
    """Build bmcᵏ_A: the property holds at frames 1..k-1 and fails at frame k."""
    unroller = _prepare(model, k, solver, proof_logging)
    _unroll_transitions(unroller, k, initial)
    for frame in range(1, k):
        unroller.assert_property(frame, partition=frame + 1)
    unroller.assert_bad(k, partition=k + 1)
    if model.constraints:
        unroller.assert_constraints_at(k, partition=k + 1)
    return unroller


def build_bound_check(model: Model, k: int, solver: Optional[CdclSolver] = None,
                      proof_logging: bool = True,
                      initial: Optional[Callable[[Unroller], None]] = None) -> Unroller:
    """Build bmcᵏ_B: failure at *some* frame 1..k.

    All property cones and the final disjunction are placed in partition
    ``k+1``; only the cut after partition 1 (the standard-interpolation
    split of Eq. (1)) yields a state-variable interpolant for this
    formulation, which is exactly how the ITP engine uses it.
    """
    unroller = _prepare(model, k, solver, proof_logging)
    _unroll_transitions(unroller, k, initial)
    bad_lits = [unroller.bad_literal(frame, partition=k + 1) for frame in range(1, k + 1)]
    unroller.solver.add_clause(bad_lits, partition=k + 1)
    if model.constraints:
        unroller.assert_constraints_at(k, partition=k + 1)
    return unroller


_BUILDERS = {
    BmcCheckKind.BOUND: build_bound_check,
    BmcCheckKind.EXACT: build_exact_check,
    BmcCheckKind.ASSUME: build_assume_check,
}


def build_check(kind: BmcCheckKind, model: Model, k: int,
                solver: Optional[CdclSolver] = None, proof_logging: bool = True,
                initial: Optional[Callable[[Unroller], None]] = None) -> Unroller:
    """Dispatch to the builder for ``kind``."""
    return _BUILDERS[kind](model, k, solver=solver, proof_logging=proof_logging,
                           initial=initial)
