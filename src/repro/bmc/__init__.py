"""Bounded model checking: unrolling, check formulations, falsification engine."""

from .cex import Trace
from .checks import (
    BmcCheckKind,
    build_assume_check,
    build_bound_check,
    build_check,
    build_exact_check,
)
from .engine import BmcEngine, BmcResult
from .incremental import IncrementalUnroller
from .unroll import Unroller

__all__ = [
    "Trace",
    "BmcCheckKind",
    "build_assume_check",
    "build_bound_check",
    "build_check",
    "build_exact_check",
    "BmcEngine",
    "BmcResult",
    "IncrementalUnroller",
    "Unroller",
]
