"""Incremental BMC: one persistent solver across all unrolling depths.

The monolithic path (:mod:`repro.bmc.checks`) re-encodes the whole
unrolling S₀ ∧ Tᵏ at every bound, so iterative deepening to depth ``k``
performs O(k²) Tseitin/clause work and every solver starts from scratch —
no learned clauses, no variable activities, no saved phases.  The
:class:`IncrementalUnroller` keeps **one** solver for the whole deepening
run, in the style of the MiniSAT incremental interface:

* the initial-state constraint and each transition frame are asserted
  *permanently*, one new frame per :meth:`extend` — O(k) total clause work;
* the depth-specific target (the bad cone at the last frame, or the bad
  disjunction for bound-mode checks) is asserted under a fresh
  activation-literal clause group
  (:meth:`~repro.sat.solver.CdclSolver.new_group`) and activated by
  assumption, so :meth:`extend` can retract it with
  :meth:`~repro.sat.solver.CdclSolver.release_group` before the next frame
  is appended;
* everything the solver learned while refuting depth ``k`` remains in force
  at depth ``k + 1``.

The three check formulations of :mod:`repro.bmc.checks` are supported and
produce, at every depth, a formula *identical* to the monolithic builder's
(modulo activation literals):

* **exact-k** — only the target moves between depths;
* **assume-k** — the ``p(Vⁱ)`` constraints for frames before the target are
  permanent: once the unrolling extends past frame ``i``, ``p(Vⁱ)`` is part
  of every deeper assume-check, exactly as in bmcᵏ_A;
* **bound-k** — the bad-cone disjunction over frames 1..k is re-issued per
  depth under the activation group (the cones themselves are cached by the
  frame encoders, so only one clause is new).

With ``proof_logging=True`` the searcher doubles as the **proof-logged
refutation check**: every permanent clause is labelled with the same
Γ-partition index the monolithic builders use (S₀ and T(V⁰,V¹) → 1,
T(Vᶠ,Vᶠ⁺¹), frame-``f`` constraints and assume-mode p(Vᶠ) → ``f+1``, the
depth-``d`` target → ``d+1``), the depth target's clause group is recorded
with its group tag, and after an UNSAT :meth:`solve` the
:meth:`refutation` method strips the activation literals from the recorded
trace (:func:`repro.sat.proof.strip_activations`) to produce a genuine
labelled refutation of the monolithic S₀ ∧ Tᵏ ∧ B — the object
interpolation consumes, without a second solve.  Clauses learned at
earlier depths re-enter later refutations as derived chains over
permanent clauses; only a chain that depends on a *released* target group
is unusable, in which case :meth:`refutation` raises
:class:`~repro.sat.proof.ActivationDependencyError` and the caller falls
back to a fresh monolithic solve (see :mod:`repro.core.base`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..aig.model import Model
from ..sat.proof import (ActivationStripStats, ResolutionProof,
                         strip_activations)
from ..sat.solver import CdclSolver, SolverError
from ..sat.types import Budget, SatResult, SolverStats
from .cex import Trace
from .checks import BmcCheckKind
from .unroll import Unroller

__all__ = ["IncrementalUnroller"]


class IncrementalUnroller:
    """Iterative-deepening BMC on a single persistent solver.

    The unroller starts armed at depth 0 (initial states + the depth-0
    target group); :meth:`extend` advances one frame at a time.  The
    intended driving loop is strict iterative deepening::

        inc = IncrementalUnroller(model)
        for depth in range(max_depth + 1):
            if depth:
                inc.extend()
            if inc.solve() is SatResult.SAT:
                return inc.extract_trace()

    :meth:`extend` assumes the current depth has just been refuted (or was
    skipped deliberately): in assume-mode it permanently asserts the
    property at the frame being left behind, which is sound precisely
    because iterative deepening visits depths in order.
    """

    def __init__(self, model: Model,
                 check_kind: BmcCheckKind = BmcCheckKind.ASSUME,
                 solver: Optional[CdclSolver] = None,
                 proof_logging: bool = False) -> None:
        if solver is None:
            solver = CdclSolver(proof_logging=proof_logging)
        elif proof_logging and not solver.proof_logging:
            raise ValueError("proof_logging requested but the supplied solver "
                             "does not record proofs")
        self.model = model
        self.proof_logging = solver.proof_logging
        self.check_kind = check_kind
        self.solver = solver
        self.unroller = Unroller(model, solver)
        self.depth = 0
        self._group: Optional[int] = None
        # The Γ-partition labels mirror the monolithic builders exactly
        # (repro.bmc.checks): S₀ and frame-f constraints/properties land in
        # partition f+1, the transition out of frame f in f+1, the depth-d
        # target in d+1.  Labels are inert without proof logging, so they
        # are passed unconditionally — a proof-free searcher behaves
        # byte-identically to the historical partition=None encoding.
        self.unroller.assert_initial_state(partition=1)
        if model.constraints:
            self.unroller.assert_constraints_at(0, partition=1)
        self._arm()

    # ------------------------------------------------------------------ #
    # Deepening
    # ------------------------------------------------------------------ #
    def _arm(self) -> None:
        """Assert the depth-specific target under a fresh activation group."""
        self._group = self.solver.new_group()
        depth = self.depth
        if self.check_kind is BmcCheckKind.BOUND and depth >= 1:
            # Bound-mode cones carry their own frame's label (f+1), not the
            # monolithic builder's k+1: stripped bound-k refutations are
            # consumed only at cut 1 (standard interpolation), where every
            # label ≥ 2 is equally on the B side, so the finer labelling is
            # interchangeable with the monolithic one there.
            bad_lits = [self.unroller.bad_literal(frame, partition=frame + 1)
                        for frame in range(1, depth + 1)]
            self.solver.add_clause(bad_lits, partition=depth + 1,
                                   group=self._group)
        else:
            # Exact/assume targets — and depth 0 for every kind — assert the
            # bad cone at the last frame only.
            self.solver.add_clause(
                [self.unroller.bad_literal(depth, partition=depth + 1)],
                partition=depth + 1, group=self._group)

    def extend(self) -> int:
        """Retract the current target, append one transition frame, re-arm.

        Returns the new depth.  Must only be called after the current depth
        has been covered (refuted) — see the class docstring.
        """
        assert self._group is not None
        self.solver.release_group(self._group)
        if self.check_kind is BmcCheckKind.ASSUME and self.depth >= 1:
            # The frame being left behind sits strictly before every future
            # target: its p(Vⁱ) constraint is permanent under bmcᵏ_A.
            self.unroller.assert_property(self.depth,
                                          partition=self.depth + 1)
        self.unroller.add_transition(self.depth, partition=self.depth + 1,
                                     include_constraints=False)
        self.depth += 1
        if self.model.constraints:
            self.unroller.assert_constraints_at(self.depth,
                                                partition=self.depth + 1)
        self._arm()
        return self.depth

    def extend_to(self, depth: int) -> int:
        """Extend (without solving intermediate depths) up to ``depth``."""
        while self.depth < depth:
            self.extend()
        return self.depth

    # ------------------------------------------------------------------ #
    # Solving and witness extraction
    # ------------------------------------------------------------------ #
    def assumptions(self) -> List[int]:
        """The assumption literals activating the current depth's target."""
        assert self._group is not None
        return [self.solver.group_literal(self._group)]

    def solve(self, assumptions: Sequence[int] = (),
              budget: Optional[Budget] = None) -> SatResult:
        """Check the current depth; extra ``assumptions`` are passed through."""
        return self.solver.solve(
            assumptions=self.assumptions() + list(assumptions), budget=budget)

    def extract_trace(self) -> Trace:
        """Build the counterexample trace after a SAT answer."""
        return self.unroller.extract_trace(self.depth)

    def refutation(self) -> Tuple[ResolutionProof, ActivationStripStats]:
        """The activation-free refutation of the current depth's check.

        Valid only after an UNSAT :meth:`solve` on a proof-logging
        unroller.  Strips the current target group's activation literal
        from the recorded trace, yielding a labelled refutation of the
        monolithic S₀ ∧ Tᵏ ∧ B equivalent to what a fresh
        :func:`repro.bmc.checks.build_check` solve would have produced.
        Raises :class:`~repro.sat.proof.ActivationDependencyError` when the
        refutation depends on a released earlier-depth group.
        """
        if not self.proof_logging:
            raise SolverError("refutation() requires proof_logging=True")
        root = self.solver.last_refutation_root()
        if root is None:
            raise SolverError(
                "no refutation recorded (last answer was not UNSAT)")
        assert self._group is not None
        active = {self._group}
        others = self.solver.group_vars() - active
        return strip_activations(self.solver.proof(), active, others, root)

    @property
    def last_call_stats(self) -> SolverStats:
        """Per-call counters of the most recent :meth:`solve`."""
        return self.solver.last_call_stats
