"""Time-frame expansion of a sequential model into CNF.

The :class:`Unroller` owns the mapping between AIG objects and CNF
variables per time frame and routes every emitted clause into the SAT
solver tagged with its Γ-partition label:

* partition ``1``   — the initial-state constraint S₀(V⁰) together with the
  first transition T(V⁰, V¹)  (the ``A₁`` term of Section II-C);
* partition ``i``   — the transition T(Vⁱ⁻¹, Vⁱ) for 2 ≤ i ≤ k;
* partition ``k+1`` — the property term (¬p(Vᵏ) for exact/assume checks,
  the disjunction of ¬p over all frames for bound checks).

Keeping this labelling in the proof is what allows a *single* refutation to
yield a whole interpolation sequence (Eq. (2) of the paper): the cut-``j``
interpolant is extracted by treating partitions 1..j as the A side.

Latch instances at frame ``f`` get dedicated CNF variables tied to the
next-state cones of frame ``f-1`` with two equivalence clauses, so the
variables shared between a prefix and a suffix of the partition are exactly
the state variables at the cut — which makes every extracted interpolant a
predicate over latch variables, as the algorithms require.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..aig.aig import lit_from_var, lit_negate
from ..aig.model import Model
from ..cnf.tseitin import TseitinEncoder
from ..sat.solver import CdclSolver
from .cex import Trace

__all__ = ["Unroller"]


class _Frame:
    """Per-time-frame CNF bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.encoder: Optional[TseitinEncoder] = None
        self.latch_vars: Dict[int, int] = {}
        self.input_vars: Dict[int, int] = {}


class Unroller:
    """Unrolls a model's transition relation into a partition-labelled CNF."""

    def __init__(self, model: Model, solver: CdclSolver) -> None:
        self.model = model
        self.solver = solver
        self._frames: List[_Frame] = []
        self._current_partition: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Frame and variable management
    # ------------------------------------------------------------------ #
    def frame(self, index: int) -> _Frame:
        """Return (creating if needed) the bookkeeping record for a frame."""
        while len(self._frames) <= index:
            frame = _Frame(len(self._frames))
            aig = self.model.aig
            for var in self.model.latch_vars:
                frame.latch_vars[var] = self.solver.new_var()
            for var in self.model.input_vars:
                frame.input_vars[var] = self.solver.new_var()
            frame.encoder = TseitinEncoder(
                aig, self.solver.new_var, self._emit, allocate_leaves=False)
            for var, cnf_var in frame.latch_vars.items():
                frame.encoder.declare_leaf(var, cnf_var)
            for var, cnf_var in frame.input_vars.items():
                frame.encoder.declare_leaf(var, cnf_var)
            self._frames.append(frame)
        return self._frames[index]

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    def latch_cnf_var(self, frame: int, latch_var: int) -> int:
        """CNF variable of a latch instance at a frame."""
        return self.frame(frame).latch_vars[latch_var]

    def input_cnf_var(self, frame: int, input_var: int) -> int:
        """CNF variable of a primary-input instance at a frame."""
        return self.frame(frame).input_vars[input_var]

    def cut_var_map(self, frame: int) -> Dict[int, int]:
        """Map CNF latch variables at ``frame`` to model AIG latch literals.

        This is the ``global variable -> AIG literal`` dictionary the
        interpolant builders need for the cut at this frame.
        """
        return {cnf_var: lit_from_var(latch_var)
                for latch_var, cnf_var in self.frame(frame).latch_vars.items()}

    def _emit(self, clause: List[int]) -> None:
        self.solver.add_clause(clause, partition=self._current_partition)

    def _encode(self, frame: int, aig_lit: int, partition: Optional[int]) -> int:
        """Encode an AIG literal's cone at a frame; return the DIMACS literal."""
        self._current_partition = partition
        try:
            encoder = self.frame(frame).encoder
            assert encoder is not None
            return encoder.literal(aig_lit)
        finally:
            self._current_partition = None

    def _add_clause(self, clause: Sequence[int], partition: Optional[int]) -> None:
        self.solver.add_clause(list(clause), partition=partition)

    # ------------------------------------------------------------------ #
    # Constraint emission
    # ------------------------------------------------------------------ #
    def assert_initial_state(self, partition: int = 1) -> None:
        """Constrain frame 0 to the model's initial states (S₀)."""
        for latch in self.model.latches:
            if latch.init is None:
                continue
            cnf_var = self.latch_cnf_var(0, latch.var)
            self._add_clause([cnf_var if latch.init else -cnf_var], partition)

    def assert_state_cube(self, state: Mapping[int, bool], frame: int,
                          partition: Optional[int]) -> None:
        """Constrain a frame to a (partial) latch valuation."""
        for latch_var, value in state.items():
            cnf_var = self.latch_cnf_var(frame, latch_var)
            self._add_clause([cnf_var if value else -cnf_var], partition)

    def assert_input_values(self, values: Mapping[int, bool], frame: int,
                            partition: Optional[int]) -> None:
        """Constrain a frame's primary inputs to concrete values."""
        for input_var, value in values.items():
            cnf_var = self.input_cnf_var(frame, input_var)
            self._add_clause([cnf_var if value else -cnf_var], partition)

    def add_transition(self, from_frame: int, partition: Optional[int],
                       include_constraints: bool = True) -> None:
        """Encode T(V^f, V^{f+1}) and (optionally) the frame-f invariant constraints.

        ``include_constraints=False`` is used by the incremental unroller,
        which asserts each frame's constraints exactly once on arrival rather
        than together with the outgoing transition.
        """
        frame = self.frame(from_frame)
        next_frame = self.frame(from_frame + 1)
        for latch in self.model.latches:
            next_lit = self._encode(from_frame, latch.next, partition)
            latch_var_next = next_frame.latch_vars[latch.var]
            self._add_clause([-latch_var_next, next_lit], partition)
            self._add_clause([latch_var_next, -next_lit], partition)
        if include_constraints:
            for constraint in self.model.constraints:
                lit = self._encode(from_frame, constraint, partition)
                self._add_clause([lit], partition)
        _ = frame

    def bad_literal(self, frame: int, partition: int) -> int:
        """Encode (without asserting) the bad literal at a frame."""
        return self._encode(frame, self.model.bad_literal, partition)

    def assert_bad(self, frame: int, partition: int) -> None:
        """Assert the bad literal (property violation) at a frame."""
        self._add_clause([self.bad_literal(frame, partition)], partition)

    def assert_property(self, frame: int, partition: int) -> None:
        """Assert that the property holds (no violation) at a frame."""
        self._add_clause([-self.bad_literal(frame, partition)], partition)

    def assert_constraints_at(self, frame: int, partition: int) -> None:
        """Assert the invariant constraints at a frame (used for the last frame)."""
        for constraint in self.model.constraints:
            lit = self._encode(frame, constraint, partition)
            self._add_clause([lit], partition)

    def constraint_literals(self, frame: int, partition: Optional[int]) -> List[int]:
        """Encode (without asserting) each invariant constraint at a frame.

        Callers that need the constraints retractable — e.g. PDR, whose
        bad-state queries must not force the violating state to have a
        constraint-satisfying successor — put the returned unit literals
        under an activation group instead of asserting them.
        """
        return [self._encode(frame, constraint, partition)
                for constraint in self.model.constraints]

    def assert_formula(self, aig_lit: int, frame: int, partition: Optional[int],
                       negate: bool = False) -> None:
        """Assert an arbitrary AIG predicate (e.g. an interpolant) at a frame.

        The predicate must be a cone over latch variables of the model's AIG;
        its leaves are bound to the frame's latch instances.
        """
        lit = self._encode(frame, aig_lit, partition)
        self._add_clause([-lit if negate else lit], partition)

    # ------------------------------------------------------------------ #
    # Witness extraction
    # ------------------------------------------------------------------ #
    def extract_trace(self, depth: int) -> Trace:
        """Build a :class:`Trace` from the solver's current model."""
        model_values = self.solver.model()

        def value(cnf_var: int) -> bool:
            return model_values.get(cnf_var, False)

        initial = {latch.var: value(self.latch_cnf_var(0, latch.var))
                   for latch in self.model.latches}
        inputs: List[Dict[int, bool]] = []
        for frame in range(depth + 1):
            if frame < self.num_frames:
                inputs.append({var: value(cnf)
                               for var, cnf in self.frame(frame).input_vars.items()})
            else:
                inputs.append({})
        return Trace(initial_state=initial, inputs=inputs, depth=depth)
