"""The evaluation suite: named instances mirroring the structure of Table I.

The paper's table has two blocks — mid-size publicly available circuits and
larger industrial ones.  The reproduction mirrors that structure with
synthetic designs:

* the *academic* block: small control circuits (rings, arbiters, traffic
  controllers, mutex protocols, parity chains) plus counters of various
  moduli giving a spread of forward/backward diameters, and a handful of
  falsifiable variants;
* the *industrial-like* block: the same families scaled up (more stations,
  wider datapaths, deeper pipelines), where BDD reachability starts to time
  out and localization abstraction pays off — the regime in which the paper
  reports ITPSEQCBA's advantage.

Every instance records its ground-truth verdict so the harness can verify
engine answers, and, when cheap to compute, the exact failure depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..aig.model import Model
from . import generators as gen

__all__ = ["SuiteInstance", "academic_suite", "industrial_suite",
           "redundant_suite", "full_suite", "quick_suite", "get_instance",
           "FUZZ_REGRESSIONS", "fuzz_instance", "fuzz_suite"]


@dataclass
class SuiteInstance:
    """One row of the evaluation."""

    name: str
    factory: Callable[[], Model]
    expected: str                    # "pass" or "fail"
    category: str                    # "academic", "industrial", … or "fuzz"
    expected_depth: Optional[int] = None   # failure depth for "fail" instances
    description: str = ""
    #: Skip the BDD baseline (Table I then reports "ovf", as the paper does
    #: for its largest industrial rows where BDD reachability blows up).
    skip_bdd: bool = False
    #: Generator-parameter summary for synthesized instances (fuzz seeds);
    #: ``--list-instances`` prints it alongside the circuit sizes.
    generator_params: Optional[str] = None

    def build(self) -> Model:
        model = self.factory()
        # Give the model the table row's name so results are reported uniformly.
        model.name = self.name
        return model


def academic_suite() -> List[SuiteInstance]:
    """The mid-size block (analogous to the upper half of Table I)."""
    return [
        SuiteInstance("ring04", lambda: gen.token_ring(4), "pass", "academic",
                      description="4-station token ring, mutual exclusion"),
        SuiteInstance("ring06", lambda: gen.token_ring(6), "pass", "academic",
                      description="6-station token ring"),
        SuiteInstance("ring05bug", lambda: gen.token_ring(5, buggy=True), "fail",
                      "academic", expected_depth=1,
                      description="token ring with an injection bug"),
        SuiteInstance("arb03", lambda: gen.round_robin_arbiter(3), "pass", "academic",
                      description="3-client round-robin arbiter, grant exclusivity"),
        SuiteInstance("arb05", lambda: gen.round_robin_arbiter(5), "pass", "academic",
                      description="5-client round-robin arbiter"),
        SuiteInstance("arb04bug", lambda: gen.round_robin_arbiter(4, buggy=True),
                      "fail", "academic", expected_depth=1,
                      description="arbiter granting client 0 unconditionally"),
        SuiteInstance("traffic1", lambda: gen.traffic_light(extra_delay_bits=1),
                      "pass", "academic",
                      description="interlocked traffic-light controller"),
        SuiteInstance("traffic2", lambda: gen.traffic_light(extra_delay_bits=2),
                      "pass", "academic",
                      description="traffic lights with a longer delay timer"),
        SuiteInstance("trafficbug", lambda: gen.traffic_light(extra_delay_bits=1,
                                                              buggy=True),
                      "fail", "academic", expected_depth=1,
                      description="traffic lights with a mis-wired lamp driver"),
        SuiteInstance("mutex", lambda: gen.mutual_exclusion(), "pass", "academic",
                      description="two-process turn-based mutual exclusion"),
        SuiteInstance("mutexbug", lambda: gen.mutual_exclusion(buggy=True), "fail",
                      "academic", expected_depth=2,
                      description="mutual exclusion ignoring the turn variable"),
        SuiteInstance("parity03", lambda: gen.parity_chain(3), "pass", "academic",
                      description="ripple chain with a relational parity invariant"),
        SuiteInstance("parity05", lambda: gen.parity_chain(5), "pass", "academic",
                      description="longer ripple chain"),
        SuiteInstance("pipe03", lambda: gen.pipeline_valid(3), "pass", "academic",
                      description="3-stage valid-bit pipeline"),
        SuiteInstance("pipe04bug", lambda: gen.pipeline_valid(4, buggy=True), "fail",
                      "academic", expected_depth=1,
                      description="pipeline with a glitching last stage"),
        SuiteInstance("queue02", lambda: gen.bounded_queue(2, guarded=True), "pass",
                      "academic", description="guarded occupancy counter (cap 3)"),
        SuiteInstance("queue02bug", lambda: gen.bounded_queue(2, guarded=False),
                      "fail", "academic", expected_depth=4,
                      description="unguarded occupancy counter overflows"),
        SuiteInstance("modcnt06", lambda: gen.modular_counter(3, 6, 7), "pass",
                      "academic", description="mod-6 counter, unreachable target"),
        SuiteInstance("modcnt12", lambda: gen.modular_counter(4, 12, 13), "pass",
                      "academic",
                      description="mod-12 counter, deeper forward diameter"),
        SuiteInstance("cnt08", lambda: gen.counter(4, 8), "fail", "academic",
                      expected_depth=8,
                      description="binary counter reaching its target at depth 8"),
        SuiteInstance("gray4", lambda: gen.gray_counter(4), "pass", "academic",
                      description="gray-code recoder with an unreachable code"),
        SuiteInstance("shift06", lambda: gen.shift_register_pattern(6, 0b101010),
                      "pass", "academic",
                      description="interlocked shift register, unreachable pattern"),
        SuiteInstance("lock03", lambda: gen.combination_lock(3, 2), "fail",
                      "academic", expected_depth=4,
                      description="3-digit combination lock opens at depth 4"),
    ]


def industrial_suite() -> List[SuiteInstance]:
    """The larger block (analogous to the industrialA..E rows of Table I)."""
    return [
        SuiteInstance("indA1_ring12", lambda: gen.token_ring(12), "pass",
                      "industrial", description="12-station ring"),
        SuiteInstance("indA2_ring16", lambda: gen.token_ring(16), "pass",
                      "industrial", description="16-station ring"),
        SuiteInstance("indB1_arb08", lambda: gen.round_robin_arbiter(8), "pass",
                      "industrial", description="8-client arbiter"),
        SuiteInstance("indB2_arb10bug",
                      lambda: gen.round_robin_arbiter(10, buggy=True), "fail",
                      "industrial", expected_depth=1,
                      description="10-client arbiter with the unconditional grant bug"),
        SuiteInstance("indC1_pipe08", lambda: gen.pipeline_valid(8), "pass",
                      "industrial", description="8-stage valid-bit pipeline"),
        SuiteInstance("indC2_pipe10bug",
                      lambda: gen.pipeline_valid(10, buggy=True), "fail",
                      "industrial", expected_depth=1,
                      description="10-stage pipeline with a glitching last stage"),
        SuiteInstance("indD1_parity08", lambda: gen.parity_chain(8), "pass",
                      "industrial", description="8-bit ripple chain invariant"),
        SuiteInstance("indD2_queue03", lambda: gen.bounded_queue(3, guarded=True),
                      "pass", "industrial",
                      description="guarded occupancy counter (cap 7)"),
        SuiteInstance("indE1_lock05", lambda: gen.combination_lock(5, 2), "fail",
                      "industrial", expected_depth=6,
                      description="5-digit combination lock, deep counterexample"),
        SuiteInstance("indE2_shift10",
                      lambda: gen.shift_register_pattern(10, 0b1010101010), "pass",
                      "industrial", description="10-bit interlocked shift register"),
        SuiteInstance("indF1_ctrldp08", lambda: gen.controller_datapath(8), "pass",
                      "industrial",
                      description="3-phase controller with an 8-bit datapath"),
        SuiteInstance("indF2_ctrldp12", lambda: gen.controller_datapath(12), "pass",
                      "industrial", skip_bdd=True,
                      description="controller with a 12-bit datapath (BDDs blow up)"),
        SuiteInstance("indF3_ctrldp16", lambda: gen.controller_datapath(16), "pass",
                      "industrial", skip_bdd=True,
                      description="controller with a 16-bit datapath (BDDs blow up)"),
        SuiteInstance("indF4_ctrldp08bug",
                      lambda: gen.controller_datapath(8, buggy=True), "fail",
                      "industrial", expected_depth=2,
                      description="datapath overflow corrupting the phase register"),
        SuiteInstance("indG1_parity12", lambda: gen.parity_chain(12), "pass",
                      "industrial", skip_bdd=True,
                      description="12-bit ripple chain: forward diameter 4095"),
    ]


def redundant_suite() -> List[SuiteInstance]:
    """Deliberately redundant designs — the preprocessing showcase block.

    Each instance carries logic the property never observes (dead cones),
    logic that is provably constant (stuck latches) or logic that is
    duplicated under different gate associations; the preprocessing
    pipeline removes 30%+ of the encoding on every one of them
    (``benchmarks/results/preprocess_reduction.txt`` is the committed
    per-pass account).
    """
    return [
        SuiteInstance("red_dead08", lambda: gen.dead_cone_counter(4, 8),
                      "pass", "redundant",
                      description="mod-15 counter plus an 8-latch dead cone"),
        SuiteInstance("red_dead08bug",
                      lambda: gen.dead_cone_counter(4, 8, target=5), "fail",
                      "redundant", expected_depth=5,
                      description="dead-cone counter reaching its target at depth 5"),
        SuiteInstance("red_stuck04", lambda: gen.stuck_gate_counter(4, 4),
                      "pass", "redundant",
                      description="counter polluted through 4 provably-stuck latches"),
        SuiteInstance("red_stuck04bug",
                      lambda: gen.stuck_gate_counter(4, 4, target=5), "fail",
                      "redundant", expected_depth=5,
                      description="stuck-gate counter failing at depth 5"),
        SuiteInstance("red_dup06", lambda: gen.duplicated_pattern(6, 3),
                      "pass", "redundant",
                      description="interlocked shift register, 3 duplicated matchers"),
        SuiteInstance("red_dup06bug",
                      lambda: gen.duplicated_pattern(6, 3, reachable=True),
                      "fail", "redundant", expected_depth=6,
                      description="duplicated matchers seeing all-ones at depth 6"),
        # Length 10 defeats the rewriter's sorted-chain flattening window
        # (_MAX_FLAT_WIDTH = 8), so only the fraig pass can merge the three
        # matcher copies — the SAT-sweeping showcase pair.
        SuiteInstance("red_dup10", lambda: gen.duplicated_pattern(10, 3),
                      "pass", "redundant",
                      description="3 duplicated matchers too wide for rewriting"),
        SuiteInstance("red_dup10bug",
                      lambda: gen.duplicated_pattern(10, 3, reachable=True),
                      "fail", "redundant", expected_depth=10,
                      description="wide duplicated matchers failing at depth 10"),
    ]


#: Fuzz-found regressions graduated into the suite.  When the fuzz loop
#: (``python -m repro.fuzz``) finds a disagreement, fix the engine bug and
#: add the seed here: the instance then runs with every suite consumer —
#: including the committed benchmark artefacts, which must be regenerated
#: in the same change (the CI staleness gate enforces that).
FUZZ_REGRESSIONS: Tuple[int, ...] = ()


def fuzz_instance(seed: int) -> SuiteInstance:
    """Build the suite row for one fuzz seed (``fuzz_s<seed>``).

    The row carries the generator's planted ground truth — verdict and
    exact failure depth — so harness verification works exactly as for the
    hand-written families.
    """
    # Deferred import: circuits is a low-level package and the fuzz
    # machinery itself imports models/builders from it.
    from ..fuzz.generate import FuzzParams, build_model, fuzz_model_name

    params = FuzzParams.from_seed(seed)
    return SuiteInstance(
        name=fuzz_model_name(seed),
        factory=lambda: build_model(params),
        expected=params.expected,
        category="fuzz",
        expected_depth=params.expected_depth,
        description="seeded random AIG with a planted modular-counter oracle",
        generator_params=params.describe())


def fuzz_suite(seeds: Optional[Sequence[int]] = None) -> List[SuiteInstance]:
    """Suite rows for fuzz seeds (default: the graduated regressions)."""
    return [fuzz_instance(seed)
            for seed in (FUZZ_REGRESSIONS if seeds is None else seeds)]


def full_suite() -> List[SuiteInstance]:
    """Academic + industrial + redundant blocks (the Fig. 6 population),
    plus any graduated fuzz regressions."""
    return (academic_suite() + industrial_suite() + redundant_suite()
            + fuzz_suite())


def quick_suite() -> List[SuiteInstance]:
    """A small, fast subset used by CI-style runs and the examples."""
    names = {"ring04", "arb03", "traffic1", "mutex", "parity03", "queue02",
             "modcnt06", "cnt08", "mutexbug", "pipe04bug"}
    return [inst for inst in full_suite() if inst.name in names]


def get_instance(name: str) -> SuiteInstance:
    """Look up a suite instance by name.

    ``fuzz_s<seed>`` names resolve for *any* seed, not only the graduated
    regressions: every fuzz find is addressable by name the moment it is
    reported, so workers rebuilding models from registry names (the
    parallel harness contract) handle fuzz instances like any other row.
    """
    for instance in full_suite():
        if instance.name == name:
            return instance
    from ..fuzz.generate import parse_fuzz_name

    seed = parse_fuzz_name(name)
    if seed is not None:
        return fuzz_instance(seed)
    raise KeyError(f"unknown suite instance {name!r}")
