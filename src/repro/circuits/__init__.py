"""Synthetic benchmark circuits and the evaluation suite."""

from .generators import (
    bounded_queue,
    controller_datapath,
    combination_lock,
    counter,
    dead_cone_counter,
    duplicated_pattern,
    gray_counter,
    modular_counter,
    mutual_exclusion,
    parity_chain,
    pipeline_valid,
    round_robin_arbiter,
    shift_register_pattern,
    stuck_gate_counter,
    token_ring,
    traffic_light,
)

__all__ = [
    "bounded_queue",
    "controller_datapath",
    "combination_lock",
    "counter",
    "dead_cone_counter",
    "duplicated_pattern",
    "gray_counter",
    "modular_counter",
    "mutual_exclusion",
    "parity_chain",
    "pipeline_valid",
    "round_robin_arbiter",
    "shift_register_pattern",
    "stuck_gate_counter",
    "token_ring",
    "traffic_light",
]

from .suite import (
    FUZZ_REGRESSIONS,
    SuiteInstance,
    academic_suite,
    full_suite,
    fuzz_instance,
    fuzz_suite,
    get_instance,
    industrial_suite,
    quick_suite,
    redundant_suite,
)

__all__ += [
    "FUZZ_REGRESSIONS",
    "SuiteInstance",
    "academic_suite",
    "full_suite",
    "fuzz_instance",
    "fuzz_suite",
    "get_instance",
    "industrial_suite",
    "quick_suite",
    "redundant_suite",
]
