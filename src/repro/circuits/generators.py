"""Parameterised benchmark circuit generators.

The paper evaluates on ~100 HWMCC-class academic netlists plus proprietary
industrial designs, none of which can be redistributed here.  These
generators produce synthetic designs that cover the behavioural regimes the
paper's analysis distinguishes:

* shallow vs. deep forward diameters (counters of different widths and
  moduli, token rings);
* small vs. large backward diameters (how close bad states sit to the
  reachable border);
* passing properties (safe arbiters, mutual exclusion, bounded queues) and
  failing properties at controllable depths (buggy variants);
* mostly-control circuits with few relevant latches (good targets for
  localization abstraction / CBA) vs. datapath-dominated circuits.

Every generator returns a :class:`~repro.aig.model.Model` whose single bad
literal encodes the property under check.  Expected verdicts are recorded by
the suite module so the harness can cross-check engine answers.
"""

from __future__ import annotations

from typing import List, Optional

from ..aig.aig import FALSE, TRUE, lit_negate
from ..aig.builder import AigBuilder
from ..aig.model import Model

__all__ = [
    "counter",
    "modular_counter",
    "gray_counter",
    "token_ring",
    "round_robin_arbiter",
    "traffic_light",
    "bounded_queue",
    "mutual_exclusion",
    "pipeline_valid",
    "shift_register_pattern",
    "combination_lock",
    "parity_chain",
    "controller_datapath",
    "dead_cone_counter",
    "stuck_gate_counter",
    "duplicated_pattern",
]


def counter(width: int, target: int, with_enable: bool = True,
            name: Optional[str] = None) -> Model:
    """A free-running (optionally enable-gated) binary counter.

    The bad condition is ``count == target``.  With ``target < 2**width``
    the property fails at depth exactly ``target`` (the enable input can be
    held high); with ``target >= 2**width`` the property can never fail,
    but the solver has to discover the wrap-around to prove it.
    """
    builder = AigBuilder(name or f"counter{width}_t{target}")
    count = builder.register(width, init=0, name="count")
    if with_enable:
        enable = builder.input_bit("enable")
        nxt = builder.mux_word(enable, builder.increment(count.q), count.q)
    else:
        nxt = builder.increment(count.q)
    builder.connect(count, nxt)
    if target < (1 << width):
        bad = builder.equals_const(count.q, target)
    else:
        bad = FALSE
    builder.aig.add_bad(bad, "count_hits_target")
    return Model(builder.aig, name=builder.aig.name)


def modular_counter(width: int, modulus: int, target: int,
                    name: Optional[str] = None) -> Model:
    """A counter that wraps at ``modulus`` (not at 2**width).

    Reachable values are 0..modulus-1, so ``target >= modulus`` gives a
    passing property whose proof requires reasoning about the wrap logic;
    ``target < modulus`` fails at depth ``target``.  The forward diameter is
    ``modulus - 1``.
    """
    if modulus < 2 or modulus > (1 << width):
        raise ValueError("modulus must be in [2, 2**width]")
    builder = AigBuilder(name or f"modcounter{width}_m{modulus}_t{target}")
    count = builder.register(width, init=0, name="count")
    enable = builder.input_bit("enable")
    wrap = builder.equals_const(count.q, modulus - 1)
    stepped = builder.mux_word(wrap, builder.constant_word(width, 0),
                               builder.increment(count.q))
    builder.connect(count, builder.mux_word(enable, stepped, count.q))
    bad = builder.equals_const(count.q, target) if target < (1 << width) else FALSE
    builder.aig.add_bad(bad, "count_hits_target")
    return Model(builder.aig, name=builder.aig.name)


def gray_counter(width: int, bad_code: Optional[int] = None,
                 name: Optional[str] = None) -> Model:
    """A Gray-code counter built as binary counter + output recoding.

    The checked property is that two specific consecutive-looking codes are
    never equal to ``bad_code`` — unreachable when ``bad_code`` is not a
    valid Gray encoding of any reachable binary value.
    """
    builder = AigBuilder(name or f"gray{width}")
    count = builder.register(width, init=0, name="bin")
    builder.connect(count, builder.increment(count.q))
    gray = [builder.aig.op_xor(count.q[i],
                               count.q[i + 1] if i + 1 < width else FALSE)
            for i in range(width)]
    if bad_code is None:
        # Property: gray code never has all bits set together with bin == 0,
        # which is unreachable (bin == 0 gives gray == 0).
        bad = builder.aig.op_and(builder.equals_const(count.q, 0),
                                 builder.aig.op_and(*gray))
    else:
        bad = builder.equals(gray, builder.constant_word(width, bad_code))
    builder.aig.add_bad(bad, "gray_bad_code")
    return Model(builder.aig, name=builder.aig.name)


def token_ring(stations: int, buggy: bool = False,
               name: Optional[str] = None) -> Model:
    """A one-hot token ring.

    The token rotates (when the ``advance`` input is high).  Property: at
    most one station holds the token.  The ``buggy`` variant lets an
    ``inject`` input set station 0's token without clearing the others,
    which breaks the property a few steps in.
    """
    builder = AigBuilder(name or f"ring{stations}{'_bug' if buggy else ''}")
    advance = builder.input_bit("advance")
    tokens = [builder.register_bit(init=1 if i == 0 else 0, name=f"tok{i}")
              for i in range(stations)]
    inject = builder.input_bit("inject") if buggy else FALSE
    for i in range(stations):
        prev = tokens[(i - 1) % stations]
        rotated = builder.aig.op_ite(advance, prev, tokens[i])
        if buggy and i == 0:
            rotated = builder.aig.op_or(rotated, inject)
        builder.connect_bit(tokens[i], rotated)
    more_than_one = lit_negate(builder.at_most_one(tokens))
    builder.aig.add_bad(more_than_one, "two_tokens")
    return Model(builder.aig, name=builder.aig.name)


def round_robin_arbiter(clients: int, buggy: bool = False,
                        name: Optional[str] = None) -> Model:
    """A round-robin arbiter over ``clients`` request lines.

    A one-hot priority token rotates every cycle; a client is granted when
    it requests and holds the token.  Property: grants are mutually
    exclusive.  The buggy variant also grants client 0 whenever it requests
    (ignoring the token), which violates mutual exclusion.
    """
    builder = AigBuilder(name or f"arb{clients}{'_bug' if buggy else ''}")
    requests = [builder.input_bit(f"req{i}") for i in range(clients)]
    token = [builder.register_bit(init=1 if i == 0 else 0, name=f"prio{i}")
             for i in range(clients)]
    for i in range(clients):
        builder.connect_bit(token[i], token[(i - 1) % clients])
    grants = [builder.aig.add_and(requests[i], token[i]) for i in range(clients)]
    if buggy:
        grants[0] = requests[0]
    bad = lit_negate(builder.at_most_one(grants))
    builder.aig.add_bad(bad, "double_grant")
    return Model(builder.aig, name=builder.aig.name)


def traffic_light(extra_delay_bits: int = 2, buggy: bool = False,
                  name: Optional[str] = None) -> Model:
    """Two traffic lights on crossing roads with a shared delay timer.

    The controller cycles through four phases (A-green, A-yellow, B-green,
    B-yellow), advancing only when a delay timer expires.  The green lamps
    are *registered* outputs set from the next phase, so proving the mutual
    exclusion of the two greens requires reachability reasoning about the
    phase encoding rather than a purely combinational argument.  The buggy
    variant also turns lamp B on during A's yellow phase.
    """
    builder = AigBuilder(name or f"traffic{extra_delay_bits}{'_bug' if buggy else ''}")
    # Phase encoding: 0=A-green, 1=A-yellow, 2=B-green, 3=B-yellow.
    phase = builder.register(2, init=0, name="phase")
    timer = builder.register(extra_delay_bits, init=0, name="timer")
    lamp_a = builder.register_bit(init=1, name="lampA")
    lamp_b = builder.register_bit(init=0, name="lampB")
    timer_done = builder.equals_const(timer.q, (1 << extra_delay_bits) - 1)
    next_timer = builder.mux_word(timer_done,
                                  builder.constant_word(extra_delay_bits, 0),
                                  builder.increment(timer.q))
    builder.connect(timer, next_timer)
    next_phase = builder.mux_word(timer_done, builder.increment(phase.q), phase.q)
    builder.connect(phase, next_phase)
    next_a_green = builder.equals_const(next_phase, 0)
    next_b_green = builder.equals_const(next_phase, 2)
    if buggy:
        # Lamp B's driver erroneously ORs in lamp A's current state, so both
        # lamps light up as soon as direction A holds its green.
        next_b_green = builder.aig.op_or(next_b_green, lamp_a)
    builder.connect_bit(lamp_a, next_a_green)
    builder.connect_bit(lamp_b, next_b_green)
    builder.aig.add_bad(builder.aig.add_and(lamp_a, lamp_b), "both_green")
    return Model(builder.aig, name=builder.aig.name)


def bounded_queue(capacity_bits: int, guarded: bool = True,
                  name: Optional[str] = None) -> Model:
    """A producer/consumer occupancy counter.

    ``push`` and ``pop`` inputs move the occupancy up and down; when
    ``guarded`` the push is ignored at capacity and the pop at zero.
    Property: occupancy never exceeds capacity.  Unguarded versions fail
    once the producer pushes past the limit.
    """
    builder = AigBuilder(name or f"queue{capacity_bits}{'_safe' if guarded else '_bug'}")
    capacity = (1 << capacity_bits) - 1
    occupancy = builder.register(capacity_bits + 1, init=0, name="occ")
    push = builder.input_bit("push")
    pop = builder.input_bit("pop")
    at_capacity = builder.greater_equal_const(occupancy.q, capacity)
    at_zero = builder.equals_const(occupancy.q, 0)
    do_push = builder.aig.add_and(push, lit_negate(at_capacity)) if guarded else push
    do_pop = builder.aig.add_and(pop, lit_negate(at_zero)) if guarded else \
        builder.aig.add_and(pop, lit_negate(at_zero))
    only_push = builder.aig.add_and(do_push, lit_negate(do_pop))
    only_pop = builder.aig.add_and(do_pop, lit_negate(do_push))
    next_occ = builder.mux_word(only_push, builder.increment(occupancy.q),
                                builder.mux_word(only_pop,
                                                 builder.decrement(occupancy.q),
                                                 occupancy.q))
    builder.connect(occupancy, next_occ)
    bad = builder.greater_equal_const(occupancy.q, capacity + 1)
    builder.aig.add_bad(bad, "overflow")
    return Model(builder.aig, name=builder.aig.name)


def mutual_exclusion(buggy: bool = False, name: Optional[str] = None) -> Model:
    """A two-process mutual-exclusion protocol with a turn variable.

    Each process cycles idle -> trying -> critical -> idle; entry to the
    critical section requires the shared ``turn`` bit.  Property: the two
    processes are never both critical.  The buggy variant lets process B
    enter regardless of the turn.
    """
    builder = AigBuilder(name or f"mutex{'_bug' if buggy else ''}")
    # Per-process state: 0=idle, 1=trying, 2=critical (2-bit encoding).
    state_a = builder.register(2, init=0, name="procA")
    state_b = builder.register(2, init=0, name="procB")
    turn = builder.register_bit(init=0, name="turn")
    req_a = builder.input_bit("reqA")
    req_b = builder.input_bit("reqB")

    def process(state, request, my_turn, tag):
        idle = builder.equals_const(state.q, 0)
        trying = builder.equals_const(state.q, 1)
        critical = builder.equals_const(state.q, 2)
        go_trying = builder.aig.add_and(idle, request)
        enter = builder.aig.add_and(trying, my_turn)
        leave = critical
        nxt = builder.mux_word(go_trying, builder.constant_word(2, 1), state.q)
        nxt = builder.mux_word(enter, builder.constant_word(2, 2), nxt)
        nxt = builder.mux_word(leave, builder.constant_word(2, 0), nxt)
        builder.connect(state, nxt)
        return idle, trying, critical

    turn_a = lit_negate(turn)
    turn_b = turn if not buggy else TRUE
    _, _, crit_a = process(state_a, req_a, turn_a, "A")
    _, _, crit_b = process(state_b, req_b, turn_b, "B")
    # Turn flips whenever a process leaves its critical section.
    leaving = builder.aig.op_or(crit_a, crit_b)
    builder.connect_bit(turn, builder.aig.op_ite(leaving, lit_negate(turn), turn))
    builder.aig.add_bad(builder.aig.add_and(crit_a, crit_b), "both_critical")
    return Model(builder.aig, name=builder.aig.name)


def pipeline_valid(depth: int, buggy: bool = False,
                   name: Optional[str] = None) -> Model:
    """A valid-bit pipeline with a stall input.

    A valid token entering stage 0 marches down the pipeline unless stalled.
    Property: a token can never appear at the last stage without having
    appeared at the previous stage one cycle earlier (tracked with a shadow
    latch).  The buggy variant spontaneously asserts the last stage's valid
    bit when a glitch input fires.
    """
    builder = AigBuilder(name or f"pipe{depth}{'_bug' if buggy else ''}")
    enqueue = builder.input_bit("enq")
    stall = builder.input_bit("stall")
    glitch = builder.input_bit("glitch") if buggy else FALSE
    valid = [builder.register_bit(init=0, name=f"valid{i}") for i in range(depth)]
    advance = lit_negate(stall)
    for i in range(depth):
        source = enqueue if i == 0 else valid[i - 1]
        nxt = builder.aig.op_ite(advance, source, valid[i])
        if buggy and i == depth - 1:
            nxt = builder.aig.op_or(nxt, glitch)
        builder.connect_bit(valid[i], nxt)
    # Shadow latch remembers whether stage depth-2 was valid last cycle or the
    # last stage was already valid (i.e. a legal reason for valid[depth-1]).
    legal_reason = builder.aig.op_or(
        valid[depth - 2] if depth >= 2 else enqueue, valid[depth - 1])
    shadow = builder.register_bit(init=0, name="shadow")
    builder.connect_bit(shadow, builder.aig.op_or(legal_reason,
                                                  builder.aig.add_and(stall, shadow)))
    bad = builder.aig.add_and(valid[depth - 1], lit_negate(shadow))
    builder.aig.add_bad(bad, "valid_without_cause")
    return Model(builder.aig, name=builder.aig.name)


def shift_register_pattern(length: int, pattern: int, reachable: bool = False,
                           name: Optional[str] = None) -> Model:
    """A serial-in shift register checked against a full-register pattern.

    With ``reachable`` the pattern can be shifted in from the serial input
    (property fails at depth ``length``); otherwise the property compares
    against a pattern that the interlock on the serial input makes
    unreachable.
    """
    builder = AigBuilder(name or f"shift{length}_{'sat' if reachable else 'unsat'}")
    serial = builder.input_bit("serial")
    bits = [builder.register_bit(init=0, name=f"sr{i}") for i in range(length)]
    # Interlock: when not 'reachable', the injected bit is forced to equal the
    # current first bit every other position, making alternating patterns
    # impossible.
    first = serial if reachable else builder.aig.add_and(serial, bits[0])
    builder.connect_bit(bits[0], first)
    for i in range(1, length):
        builder.connect_bit(bits[i], bits[i - 1])
    want = [(pattern >> i) & 1 for i in range(length)]
    match = builder.aig.op_and(*[bits[i] if want[i] else lit_negate(bits[i])
                                 for i in range(length)])
    builder.aig.add_bad(match, "pattern_seen")
    return Model(builder.aig, name=builder.aig.name)


def combination_lock(digits: int, width: int = 2, code: Optional[List[int]] = None,
                     name: Optional[str] = None) -> Model:
    """A sequential combination lock (the classic deep-counterexample design).

    The lock opens only after the correct ``digits``-long sequence of
    ``width``-bit symbols is entered in order; any wrong symbol resets the
    progress counter.  Property: the lock never opens — which *fails*, but
    only at depth ``digits``, making it a controllable-depth falsification
    target that is hard for random simulation.
    """
    builder = AigBuilder(name or f"lock{digits}x{width}")
    if code is None:
        code = [(3 * i + 1) % (1 << width) for i in range(digits)]
    symbol = builder.input_word(width, "sym")
    progress_bits = max(1, (digits + 1).bit_length())
    progress = builder.register(progress_bits, init=0, name="progress")
    opened = builder.register_bit(init=0, name="opened")
    match_any = FALSE
    next_progress = builder.constant_word(progress_bits, 0)
    for step in range(digits):
        at_step = builder.equals_const(progress.q, step)
        good = builder.aig.add_and(at_step, builder.equals_const(symbol, code[step]))
        match_any = builder.aig.op_or(match_any, good)
        next_progress = builder.mux_word(
            good, builder.constant_word(progress_bits, step + 1), next_progress)
    builder.connect(progress, next_progress)
    done = builder.equals_const(progress.q, digits)
    builder.connect_bit(opened, builder.aig.op_or(opened, done))
    builder.aig.add_bad(opened, "lock_opened")
    return Model(builder.aig, name=builder.aig.name)


def parity_chain(length: int, buggy: bool = False,
                 name: Optional[str] = None) -> Model:
    """A chain of toggling latches with a parity invariant.

    Latch i toggles when latch i-1 is high (a ripple counter in disguise).
    Property: the parity of the chain equals the parity predicted by a
    shadow latch — an invariant of the update rule.  The buggy variant
    breaks the shadow update.
    """
    builder = AigBuilder(name or f"parity{length}{'_bug' if buggy else ''}")
    tick = builder.input_bit("tick")
    bits = [builder.register_bit(init=0, name=f"c{i}") for i in range(length)]
    carry = tick
    for i in range(length):
        builder.connect_bit(bits[i], builder.aig.op_xor(bits[i], carry))
        carry = builder.aig.add_and(bits[i], carry)
    shadow = builder.register_bit(init=0, name="shadow_parity")
    if buggy:
        builder.connect_bit(shadow, builder.aig.op_xor(shadow, TRUE))
    else:
        builder.connect_bit(shadow, builder.aig.op_xor(shadow, tick))
    # The low counter bit toggles exactly when tick is high, so it must stay
    # equal to the shadow latch: a two-latch relational invariant.
    bad = builder.aig.op_xor(bits[0], shadow)
    builder.aig.add_bad(bad, "parity_mismatch")
    return Model(builder.aig, name=builder.aig.name)


def dead_cone_counter(width: int = 4, junk_latches: int = 8,
                      target: Optional[int] = None,
                      name: Optional[str] = None) -> Model:
    """A small live counter dragging a large, property-irrelevant dead cone.

    The live part is a counter that wraps at ``2**width - 1``; the property
    checks ``count == target`` (``target=None`` picks the one unreachable
    value, a passing property whose proof needs the wrap; smaller targets
    fail at depth ``target``).  The dead part is a bank of ``junk_latches``
    toggling latches on private inputs, mixed into a reduction tree that
    feeds a primary *output* only — logic that every naive encoding pays
    for and cone-of-influence reduction removes wholesale.
    """
    builder = AigBuilder(name or f"deadcone{width}x{junk_latches}")
    modulus = (1 << width) - 1
    if target is None:
        target = modulus  # reachable values are 0 .. modulus-1
    count = builder.register(width, init=0, name="count")
    enable = builder.input_bit("enable")
    wrap = builder.equals_const(count.q, modulus - 1)
    stepped = builder.mux_word(wrap, builder.constant_word(width, 0),
                               builder.increment(count.q))
    builder.connect(count, builder.mux_word(enable, stepped, count.q))

    junk = [builder.register_bit(init=0, name=f"junk{i}")
            for i in range(junk_latches)]
    mixed = TRUE
    for i, bit in enumerate(junk):
        toggle = builder.input_bit(f"jin{i}")
        builder.connect_bit(bit, builder.aig.op_xor(bit, toggle))
        mixed = builder.aig.add_and(mixed, builder.aig.op_xor(mixed, bit))
    builder.aig.add_output(mixed, "junk_mix")

    builder.aig.add_bad(builder.equals_const(count.q, target), "count_hits_target")
    return Model(builder.aig, name=builder.aig.name)


def stuck_gate_counter(width: int = 4, stuck: int = 4,
                       target: Optional[int] = None,
                       name: Optional[str] = None) -> Model:
    """A counter whose property cone is polluted through provably-stuck latches.

    ``stuck`` latches reset to 0 and reload as ``latch & input`` — they can
    never leave 0, which ternary simulation proves.  Each gates a
    free-toggling churn latch into a ``corrupt`` disjunction that is
    OR-ed into the bad condition.  Plain cone-of-influence reduction keeps
    everything (the corrupt network sits squarely in the property cone);
    only after sweeping replaces the stuck latches by 0 does ``corrupt``
    collapse and a second COI pass drop the churn latches and their inputs.
    Verdict and depth semantics match :func:`dead_cone_counter`.
    """
    builder = AigBuilder(name or f"stuckgate{width}x{stuck}")
    modulus = (1 << width) - 1
    if target is None:
        target = modulus
    count = builder.register(width, init=0, name="count")
    enable = builder.input_bit("enable")
    wrap = builder.equals_const(count.q, modulus - 1)
    stepped = builder.mux_word(wrap, builder.constant_word(width, 0),
                               builder.increment(count.q))
    builder.connect(count, builder.mux_word(enable, stepped, count.q))

    corrupt = FALSE
    for i in range(stuck):
        latch = builder.register_bit(init=0, name=f"stuck{i}")
        builder.connect_bit(latch, builder.aig.add_and(
            latch, builder.input_bit(f"sin{i}")))
        partner = builder.register_bit(init=0, name=f"churn{i}")
        builder.connect_bit(partner, builder.aig.op_xor(
            partner, builder.input_bit(f"cin{i}")))
        corrupt = builder.aig.op_or(corrupt,
                                    builder.aig.add_and(latch, partner))

    hit = builder.equals_const(count.q, target)
    builder.aig.add_bad(builder.aig.op_or(hit, corrupt), "count_or_corrupt")
    return Model(builder.aig, name=builder.aig.name)


def duplicated_pattern(length: int = 6, copies: int = 3, reachable: bool = False,
                       name: Optional[str] = None) -> Model:
    """A shift register whose pattern matcher is instantiated ``copies`` times.

    Every copy computes the same full-register conjunction with a different
    gate association (left chain, right chain, balanced tree, ...), so
    structural hashing at build time cannot merge them; the rewriting
    pass normalises all copies to one sorted chain and the duplicates
    vanish.  With ``reachable=False`` the entry stage only accepts a 1 when
    it currently holds a 0, so two adjacent 1s can never sit in the
    register and the all-ones pattern is unreachable (the property passes,
    with a one-step inductive argument — the latches are *not* stuck, so
    sweeping cannot shortcut it); with ``reachable=True`` the serial input
    is free and the property fails at depth exactly ``length``.
    """
    builder = AigBuilder(name or
                         f"dup{length}x{copies}{'_sat' if reachable else ''}")
    serial = builder.input_bit("serial")
    bits = [builder.register_bit(init=0, name=f"sr{i}") for i in range(length)]
    first = serial if reachable else builder.aig.add_and(serial,
                                                         lit_negate(bits[0]))
    builder.connect_bit(bits[0], first)
    for i in range(1, length):
        builder.connect_bit(bits[i], bits[i - 1])

    def build_copy(order: List[int], balanced: bool) -> int:
        if balanced:
            level = [bits[i] for i in order]
            while len(level) > 1:
                paired = []
                for j in range(0, len(level) - 1, 2):
                    paired.append(builder.aig.add_and(level[j], level[j + 1]))
                if len(level) % 2:
                    paired.append(level[-1])
                level = paired
            return level[0]
        out = TRUE
        for i in order:
            out = builder.aig.add_and(out, bits[i])
        return out

    matches = []
    for copy_index in range(copies):
        if copy_index % 3 == 0:
            matches.append(build_copy(list(range(length)), balanced=False))
        elif copy_index % 3 == 1:
            matches.append(build_copy(list(reversed(range(length))),
                                      balanced=False))
        else:
            matches.append(build_copy(list(range(length)), balanced=True))
    builder.aig.add_bad(builder.aig.op_or(*matches), "pattern_seen")
    return Model(builder.aig, name=builder.aig.name)


def controller_datapath(data_width: int, stages: int = 3, buggy: bool = False,
                        name: Optional[str] = None) -> Model:
    """A small control FSM dragging along a wide, property-irrelevant datapath.

    The controller sequences ``stages`` one-hot phases gated by a ``go``
    input; a wide accumulator and a shift register churn on the data inputs
    every cycle.  The property (the one-hot phase encoding never becomes
    multi-hot) depends only on the controller latches, which makes the
    design the sweet spot for localization abstraction: SAT-based engines
    that reason about the whole netlist drag the datapath into every
    unrolling, while CBA never needs to re-introduce it.  The buggy variant
    lets a datapath overflow corrupt the phase register.
    """
    builder = AigBuilder(name or f"ctrldp{data_width}x{stages}{'_bug' if buggy else ''}")
    go = builder.input_bit("go")
    data_in = builder.input_word(data_width, "din")

    # One-hot phase register: phase0 active at reset.
    phases = [builder.register_bit(init=1 if i == 0 else 0, name=f"ph{i}")
              for i in range(stages)]
    advance = builder.aig.op_or(go, phases[stages - 1])
    for i in range(stages):
        prev = phases[(i - 1) % stages]
        builder.connect_bit(phases[i], builder.aig.op_ite(advance, prev, phases[i]))

    # Datapath: accumulator plus a shift pipeline of the data input.
    accumulator = builder.register(data_width, init=0, name="acc")
    shifted = builder.register(data_width, init=0, name="shift")
    total = builder.add_words(accumulator.q, data_in)
    builder.connect(accumulator, total)
    builder.connect(shifted, builder.shift_left(shifted.q, fill=data_in[0]))

    multi_hot = lit_negate(builder.at_most_one(phases))
    if buggy:
        overflow = builder.equals_const(accumulator.q, (1 << data_width) - 1)
        corrupt = builder.aig.add_and(overflow, go)
        # The corrupting pulse sets phase 1 regardless of the rotation.
        builder.connect_bit(phases[1], builder.aig.op_or(
            builder.aig.op_ite(advance, phases[0], phases[1]), corrupt))
    builder.aig.add_bad(multi_hot, "multi_hot_phase")
    return Model(builder.aig, name=builder.aig.name)
