"""Experiment harness regenerating the paper's Table I, Fig. 6 and Fig. 7."""

from .fig6 import fig6_clause_series, fig6_series, fig6_summary, render_fig6, run_fig6
from .fig7 import Fig7Point, render_fig7, run_fig7
from .records import EngineRecord, InstanceRecord
from .render import (
    ascii_curves,
    ascii_scatter,
    drop_time_columns,
    format_csv,
    format_table,
)
from .runner import ExperimentRunner, HarnessConfig
from .table1 import (
    TABLE1_ENGINES,
    render_table1,
    run_table1,
    table1_deterministic_headers,
    table1_deterministic_rows,
    table1_headers,
    table1_rows,
)

__all__ = [
    "fig6_clause_series",
    "fig6_series",
    "fig6_summary",
    "render_fig6",
    "run_fig6",
    "Fig7Point",
    "render_fig7",
    "run_fig7",
    "EngineRecord",
    "InstanceRecord",
    "ascii_curves",
    "ascii_scatter",
    "drop_time_columns",
    "format_csv",
    "format_table",
    "ExperimentRunner",
    "HarnessConfig",
    "TABLE1_ENGINES",
    "render_table1",
    "run_table1",
    "table1_deterministic_headers",
    "table1_deterministic_rows",
    "table1_headers",
    "table1_rows",
]
