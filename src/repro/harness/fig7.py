"""Fig. 7: interpolation sequences with exact-k vs. assume-k checks.

The paper's scatter plot compares, instance by instance, the runtime of the
ITPSEQ engine when its BMC checks use the exact-k formulation (x axis)
against the assume-k formulation (y axis); points below the diagonal mean
assume-k wins, which the paper reports for almost every benchmark
(Section III / Section VI).

Every point also carries the two runs' cumulative solver counters.  The
committed artefact compares *conflicts* — the deterministic form of the
paper's "assume-k yields easier SAT instances" claim (clause additions go
the other way: assume-k asserts every bound's bad cone, so it *encodes*
more while *searching* far less).  The wall-clock scatter goes to the
untracked timing artefact — two runs of the same code never reproduce it
exactly, whereas the counters always do.

``run_fig7(jobs=N)`` fans the (instance × check-kind) cells out over a
worker pool; the merge is order-preserving, so the points come back in
suite order with both configurations attached regardless of completion
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from ..bmc.checks import BmcCheckKind
from ..circuits.suite import SuiteInstance, full_suite, get_instance
from ..core.options import EngineOptions
from ..core.portfolio import run_engine
from ..parallel import parallel_map
from .render import ascii_scatter, format_csv, format_table

__all__ = ["Fig7Point", "run_fig7", "render_fig7"]


@dataclass
class Fig7Point:
    """One benchmark's exact-k vs assume-k comparison."""

    name: str
    exact_time: float
    assume_time: float
    exact_verdict: str
    assume_verdict: str
    exact_clauses: int = 0
    assume_clauses: int = 0
    exact_conflicts: int = 0
    assume_conflicts: int = 0

    @property
    def assume_wins(self) -> bool:
        return self.assume_time <= self.exact_time

    @property
    def assume_wins_conflicts(self) -> bool:
        """The deterministic form of the win: less search effort.

        Conflicts, not clause additions — assume-k deliberately *encodes*
        more (every bound's bad cone is asserted) to make each query
        *easier*, which is the paper's Section III argument.
        """
        return self.assume_conflicts <= self.exact_conflicts


def _run_fig7_cell(spec):
    """One (instance, check-kind) run; module-level so workers can pickle it."""
    name, engine, kind_value, time_limit, max_bound, max_clauses, \
        max_propagations = spec
    options = EngineOptions(max_bound=max_bound, time_limit=time_limit,
                            max_clauses=max_clauses,
                            max_propagations=max_propagations,
                            bmc_check=BmcCheckKind(kind_value))
    result = run_engine(engine, get_instance(name).build(), options)
    return (result.time_seconds, result.verdict.value,
            result.stats.clauses_added, result.stats.conflicts)


def run_fig7(instances: Optional[Iterable[SuiteInstance]] = None,
             time_limit: Optional[float] = 60.0, max_bound: int = 30,
             engine: str = "itpseq",
             max_clauses: Optional[int] = None,
             max_propagations: Optional[int] = None,
             jobs: Optional[int] = 1,
             progress: Optional[Callable[[str, Fig7Point], None]] = None
             ) -> List[Fig7Point]:
    """Run the engine twice per instance (exact-k, then assume-k).

    Instances must come from the registry suite: every cell — serial or
    pooled — rebuilds its model via :func:`~repro.circuits.suite.get_instance`
    so the two code paths cannot drift apart.
    """
    instances = list(instances) if instances is not None else full_suite()
    for instance in instances:
        try:
            registered = get_instance(instance.name)
        except KeyError:
            registered = None
        if registered is None or registered.expected != instance.expected:
            raise ValueError(
                f"run_fig7 requires registry suite instances (cells rebuild "
                f"models by name, serial or pooled); {instance.name!r} is "
                f"not from circuits.suite")
    kinds = (BmcCheckKind.EXACT, BmcCheckKind.ASSUME)
    specs = [(instance.name, engine, kind.value, time_limit, max_bound,
              max_clauses, max_propagations)
             for instance in instances for kind in kinds]
    cells = parallel_map(_run_fig7_cell, specs, jobs=jobs)
    points: List[Fig7Point] = []
    for index, instance in enumerate(instances):
        exact = cells[2 * index]
        assume = cells[2 * index + 1]
        point = Fig7Point(
            name=instance.name,
            exact_time=exact[0], assume_time=assume[0],
            exact_verdict=exact[1], assume_verdict=assume[1],
            exact_clauses=exact[2], assume_clauses=assume[2],
            exact_conflicts=exact[3], assume_conflicts=assume[3],
        )
        points.append(point)
        if progress is not None:
            progress(instance.name, point)
    return points


def render_fig7(points: Sequence[Fig7Point], as_csv: bool = False,
                deterministic: bool = False) -> str:
    """Render the scatter plot, the per-instance data and the win counts.

    ``deterministic=True`` renders the conflict-count comparison (the
    committed artefact); the default renders the paper's wall-clock form.
    """
    if deterministic:
        headers = ["name", "exact_conflicts", "assume_conflicts",
                   "exact_clauses", "assume_clauses", "exact_verdict",
                   "assume_verdict", "assume_wins_conflicts"]
        rows = [[p.name, p.exact_conflicts, p.assume_conflicts,
                 p.exact_clauses, p.assume_clauses,
                 p.exact_verdict, p.assume_verdict, p.assume_wins_conflicts]
                for p in points]
        if as_csv:
            return format_csv(headers, rows)
        wins = sum(1 for p in points if p.assume_wins_conflicts)
        parts = [
            "Fig. 7 (deterministic form) — ITPSEQ search effort, "
            "exact-k (x) vs assume-k (y) checks",
            ascii_scatter([(float(p.exact_conflicts), float(p.assume_conflicts))
                           for p in points],
                          x_label="exact-k conflicts", y_label="assume-k conflicts"),
            format_table(headers, rows, title="per-instance solver counters"),
            f"assume-k needs at most as many conflicts on {wins}/{len(points)} instances",
        ]
        return "\n\n".join(parts)
    headers = ["name", "exact_time", "assume_time", "exact_verdict",
               "assume_verdict", "assume_wins"]
    rows = [[p.name, round(p.exact_time, 3), round(p.assume_time, 3),
             p.exact_verdict, p.assume_verdict, p.assume_wins] for p in points]
    if as_csv:
        return format_csv(headers, rows)
    wins = sum(1 for p in points if p.assume_wins)
    parts = [
        "Fig. 7 — ITPSEQ with exact-k (x) vs assume-k (y) checks",
        ascii_scatter([(p.exact_time, p.assume_time) for p in points],
                      x_label="exact-k time [s]", y_label="assume-k time [s]"),
        format_table(headers, rows, title="per-instance times"),
        f"assume-k is at least as fast on {wins}/{len(points)} instances",
    ]
    return "\n\n".join(parts)
