"""Fig. 7: interpolation sequences with exact-k vs. assume-k checks.

The paper's scatter plot compares, instance by instance, the runtime of the
ITPSEQ engine when its BMC checks use the exact-k formulation (x axis)
against the assume-k formulation (y axis); points below the diagonal mean
assume-k wins, which the paper reports for almost every benchmark
(Section III / Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..bmc.checks import BmcCheckKind
from ..circuits.suite import SuiteInstance, full_suite
from ..core.options import EngineOptions
from ..core.portfolio import run_engine
from .render import ascii_scatter, format_csv, format_table

__all__ = ["Fig7Point", "run_fig7", "render_fig7"]


@dataclass
class Fig7Point:
    """One benchmark's (exact-k time, assume-k time) pair."""

    name: str
    exact_time: float
    assume_time: float
    exact_verdict: str
    assume_verdict: str

    @property
    def assume_wins(self) -> bool:
        return self.assume_time <= self.exact_time


def run_fig7(instances: Optional[Iterable[SuiteInstance]] = None,
             time_limit: float = 60.0, max_bound: int = 30,
             engine: str = "itpseq",
             progress: Optional[callable] = None) -> List[Fig7Point]:
    """Run the ITPSEQ engine twice per instance (exact-k, then assume-k)."""
    points: List[Fig7Point] = []
    for instance in instances if instances is not None else full_suite():
        results = {}
        for kind in (BmcCheckKind.EXACT, BmcCheckKind.ASSUME):
            options = EngineOptions(max_bound=max_bound, time_limit=time_limit,
                                    bmc_check=kind)
            results[kind] = run_engine(engine, instance.build(), options)
        point = Fig7Point(
            name=instance.name,
            exact_time=results[BmcCheckKind.EXACT].time_seconds,
            assume_time=results[BmcCheckKind.ASSUME].time_seconds,
            exact_verdict=results[BmcCheckKind.EXACT].verdict.value,
            assume_verdict=results[BmcCheckKind.ASSUME].verdict.value,
        )
        points.append(point)
        if progress is not None:
            progress(instance.name, point)
    return points


def render_fig7(points: Sequence[Fig7Point], as_csv: bool = False) -> str:
    """Render the scatter plot, the per-instance data and the win counts."""
    headers = ["name", "exact_time", "assume_time", "exact_verdict",
               "assume_verdict", "assume_wins"]
    rows = [[p.name, round(p.exact_time, 3), round(p.assume_time, 3),
             p.exact_verdict, p.assume_verdict, p.assume_wins] for p in points]
    if as_csv:
        return format_csv(headers, rows)
    wins = sum(1 for p in points if p.assume_wins)
    parts = [
        "Fig. 7 — ITPSEQ with exact-k (x) vs assume-k (y) checks",
        ascii_scatter([(p.exact_time, p.assume_time) for p in points],
                      x_label="exact-k time [s]", y_label="assume-k time [s]"),
        format_table(headers, rows, title="per-instance times"),
        f"assume-k is at least as fast on {wins}/{len(points)} instances",
    ]
    return "\n\n".join(parts)
