"""Table I: per-instance comparison of BDDs, ITP, ITPSEQ, SITPSEQ, ITPSEQCBA, PDR.

For every suite instance the table reports the circuit size (#PI, #FF), the
BDD baseline (forward/backward diameters and times, or overflow), and for
each engine the runtime together with the (k_fp, j_fp) depth pair of
Section IV-B — the columns of the paper's Table I, extended with a fifth
engine column group for the IC3/PDR engine (its k_fp is the number of
frames built, its j_fp the fixpoint frame index).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..circuits.suite import SuiteInstance, full_suite
from .records import InstanceRecord
from .render import format_csv, format_table
from .runner import ExperimentRunner, HarnessConfig

__all__ = ["TABLE1_ENGINES", "table1_headers", "table1_rows",
           "table1_deterministic_headers", "table1_deterministic_rows",
           "render_table1", "run_table1"]

TABLE1_ENGINES = ("itp", "itpseq", "sitpseq", "itpseqcba", "pdr")


def table1_headers(engines: Sequence[str] = TABLE1_ENGINES) -> List[str]:
    headers = ["Name", "#PI", "#FF", "d_F", "Time_F", "d_B", "Time_B"]
    for engine in engines:
        headers += [f"{engine}.Time", f"{engine}.k_fp", f"{engine}.j_fp"]
    return headers


def _engine_cells(record: InstanceRecord, engine: str) -> List[object]:
    engine_record = record.engine_record(engine)
    if engine_record is None:
        return ["-", "-", "-"]
    if not engine_record.solved:
        bound = f"({engine_record.k_fp})" if engine_record.k_fp is not None else "(-)"
        return ["ovf", bound, "-"]
    return [round(engine_record.time_seconds, 3), engine_record.k_fp,
            engine_record.j_fp]


def table1_rows(records: Iterable[InstanceRecord],
                engines: Sequence[str] = TABLE1_ENGINES) -> List[List[object]]:
    rows: List[List[object]] = []
    for record in records:
        row: List[object] = [record.name, record.num_inputs, record.num_latches]
        if record.bdd is None or record.bdd.status == "overflow":
            row += [None, "ovf", None, "ovf"]
        else:
            row += [record.bdd.d_f, round(record.bdd.time_forward, 3),
                    record.bdd.d_b, round(record.bdd.time_backward, 3)]
        for engine in engines:
            row += _engine_cells(record, engine)
        rows.append(row)
    return rows


def table1_deterministic_headers(engines: Sequence[str] = TABLE1_ENGINES) -> List[str]:
    """Headers of the machine-independent Table I variant.

    No wall-clock columns; instead each engine reports its verdict and the
    cumulative clause additions (the deterministic effort measure this repo
    judges performance by).  The overflow bound ``k_fp`` stays meaningful
    because artefact runs budget on ``max_clauses``, which trips at the
    same query everywhere.  ``preFF`` / ``preAND`` / ``preFRAIG`` report
    what the preprocessing pipeline removed from the instance before the
    engines encoded it — latches swept, AND gates dropped overall, and the
    subset of nodes the SAT-sweeping pass merged (identical for every
    engine of a row, since they share one configuration); all 0 when the
    run had preprocessing off.
    """
    headers = ["Name", "#PI", "#FF", "preFF", "preAND", "preFRAIG",
               "bdd", "d_F", "d_B"]
    for engine in engines:
        headers += [f"{engine}.verdict", f"{engine}.k_fp", f"{engine}.j_fp",
                    f"{engine}.clauses"]
    return headers


def _preprocess_cells(record: InstanceRecord) -> List[object]:
    """Latch / AND / fraig reduction of the instance (engine-independent)."""
    engine_records = list(record.engines.values())
    if not engine_records:
        return [None, None, None]
    return [max(r.pre_latches_removed for r in engine_records),
            max(r.pre_ands_removed for r in engine_records),
            max(r.fraig_merges for r in engine_records)]


def table1_deterministic_rows(records: Iterable[InstanceRecord],
                              engines: Sequence[str] = TABLE1_ENGINES) -> List[List[object]]:
    rows: List[List[object]] = []
    for record in records:
        row: List[object] = [record.name, record.num_inputs, record.num_latches]
        row += _preprocess_cells(record)
        if record.bdd is None or record.bdd.status == "overflow":
            row += ["ovf", None, None]
        else:
            row += [record.bdd.status, record.bdd.d_f, record.bdd.d_b]
        for engine in engines:
            engine_record = record.engine_record(engine)
            if engine_record is None:
                row += ["-", None, None, None]
            elif not engine_record.solved:
                bound = (f"({engine_record.k_fp})"
                         if engine_record.k_fp is not None else "(-)")
                row += [engine_record.verdict, bound, None,
                        engine_record.clauses_added]
            else:
                row += [engine_record.verdict, engine_record.k_fp,
                        engine_record.j_fp, engine_record.clauses_added]
        rows.append(row)
    return rows


def render_table1(records: Iterable[InstanceRecord],
                  engines: Sequence[str] = TABLE1_ENGINES,
                  as_csv: bool = False, deterministic: bool = False) -> str:
    """Render Table I as text (or CSV).

    ``deterministic=True`` renders the machine-independent variant (the
    committed-artefact / CI-staleness-gate form: verdicts, depth pairs and
    clause counters, no wall clock — identical across machines and ``jobs``
    counts); the default keeps the paper's full layout with times.
    """
    records = list(records)
    if deterministic:
        headers = table1_deterministic_headers(engines)
        rows = table1_deterministic_rows(records, engines)
        title = ("Table I (deterministic columns) — verdicts, depth pairs, "
                 "clause additions; ovf bound in brackets")
    else:
        headers = table1_headers(engines)
        rows = table1_rows(records, engines)
        title = ("Table I — performance comparison "
                 "(times in seconds; ovf = budget exceeded)")
    if as_csv:
        return format_csv(headers, rows)
    return format_table(headers, rows, title=title)


def run_table1(instances: Optional[Iterable[SuiteInstance]] = None,
               config: Optional[HarnessConfig] = None,
               progress: Optional[Callable[[str, float, InstanceRecord], None]] = None
               ) -> List[InstanceRecord]:
    """Run the Table I experiment and return the per-instance records."""
    runner = ExperimentRunner(config or HarnessConfig(engines=TABLE1_ENGINES))
    return runner.run_suite(instances if instances is not None else full_suite(),
                            progress=progress)
