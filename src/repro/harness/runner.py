"""Experiment runner: engines × instances with per-run resource limits.

This is the equivalent of the paper's batch infrastructure: every engine is
run on every suite instance under a wall-clock budget (the paper used
1800 s; the defaults here are scaled to the pure-Python substrate), and the
BDD baseline adds the exact diameters when it completes within its own
budget.  Answers are cross-checked against the instance's expected verdict,
so a regression in any engine trips the harness rather than silently
skewing a table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..bdd.checker import check_with_bdds
from ..circuits.suite import SuiteInstance, full_suite, quick_suite
from ..core.options import EngineOptions
from ..core.portfolio import ENGINES, run_engine
from .records import EngineRecord, InstanceRecord

__all__ = ["HarnessConfig", "ExperimentRunner"]


@dataclass
class HarnessConfig:
    """Batch-run configuration."""

    engines: Sequence[str] = ("itp", "itpseq", "sitpseq", "itpseqcba", "pdr")
    time_limit: float = 60.0            # per engine per instance, seconds
    max_bound: int = 30
    run_bdds: bool = True
    bdd_node_limit: int = 200_000
    bdd_time_limit: float = 30.0
    check_expected: bool = True
    engine_options: Optional[EngineOptions] = None

    def options(self) -> EngineOptions:
        if self.engine_options is not None:
            return self.engine_options
        return EngineOptions(max_bound=self.max_bound, time_limit=self.time_limit)


class ExperimentRunner:
    """Runs engines over suite instances and collects records."""

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        self.config = config or HarnessConfig()
        unknown = [e for e in self.config.engines if e not in ENGINES]
        if unknown:
            raise KeyError(f"unknown engines in config: {unknown}")

    # ------------------------------------------------------------------ #
    # Single instance
    # ------------------------------------------------------------------ #
    def run_instance(self, instance: SuiteInstance,
                     engines: Optional[Sequence[str]] = None) -> InstanceRecord:
        """Run the configured engines (and optionally BDDs) on one instance."""
        model = instance.build()
        record = InstanceRecord(
            name=instance.name,
            category=instance.category,
            expected=instance.expected,
            num_inputs=model.num_inputs,
            num_latches=model.num_latches,
        )
        if self.config.run_bdds and not instance.skip_bdd:
            record.bdd = check_with_bdds(model,
                                         max_nodes=self.config.bdd_node_limit,
                                         time_limit=self.config.bdd_time_limit)
        options = self.config.options()
        for engine_name in engines or self.config.engines:
            result = run_engine(engine_name, instance.build(), options)
            record.engines[engine_name] = EngineRecord.from_result(result)
        if self.config.check_expected and not record.verdict_consistent():
            raise RuntimeError(
                f"verdict mismatch on {instance.name}: expected {instance.expected}, "
                f"got { {e: r.verdict for e, r in record.engines.items()} } "
                f"(bdd={record.bdd.status if record.bdd else 'n/a'})")
        return record

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #
    def run_suite(self, instances: Optional[Iterable[SuiteInstance]] = None,
                  progress: Optional[callable] = None) -> List[InstanceRecord]:
        """Run the whole suite; returns one record per instance."""
        records: List[InstanceRecord] = []
        for instance in instances if instances is not None else full_suite():
            started = time.monotonic()
            record = self.run_instance(instance)
            records.append(record)
            if progress is not None:
                progress(instance.name, time.monotonic() - started, record)
        return records

    def run_quick(self, progress: Optional[callable] = None) -> List[InstanceRecord]:
        """Run the fast subset of the suite."""
        return self.run_suite(quick_suite(), progress=progress)
