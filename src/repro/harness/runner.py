"""Experiment runner: engines × instances with per-run resource limits.

This is the equivalent of the paper's batch infrastructure: every engine is
run on every suite instance under a resource budget (the paper used a
1800 s wall clock; here either a scaled-down time limit or the
machine-independent ``max_clauses`` budget), and the BDD baseline adds the
exact diameters when it completes within its own budget.  Answers are
cross-checked against the instance's expected verdict, so a regression in
any engine trips the harness rather than silently skewing a table.

Multi-core runs
---------------
``HarnessConfig(jobs=N)`` fans the individual engine × instance cells (and
the BDD baseline cells) out over a ``multiprocessing`` pool.  Each worker
receives only the *name* of a suite instance plus the pure-data config —
never a solver or an engine — rebuilds the model locally and sends back a
pickle-safe :class:`EngineRecord`.  The merge is order-preserving
(:func:`repro.parallel.parallel_map` returns results index-aligned with
its inputs), so a run at any job count assembles exactly the same records
in exactly the same order as the serial reference path (``jobs=1``), and
the Table I / Fig. 6 artefacts come out identical.  The only fields that
vary between runs are the measured wall-clock times, which is why the
committed artefacts render without them (see ``records.DETERMINISTIC``
and the deterministic render modes).
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..bdd.checker import BddVerdict, check_with_bdds
from ..circuits.suite import SuiteInstance, full_suite, get_instance, quick_suite
from ..core.options import EngineOptions
from ..core.portfolio import ENGINES, run_engine
from ..parallel import parallel_map
from .records import EngineRecord, InstanceRecord

__all__ = ["HarnessConfig", "ExperimentRunner", "ProgressCallback"]

_log = logging.getLogger("repro.harness")

#: Per-instance progress callback: ``(instance_name, elapsed_seconds,
#: record)``, fired once per instance in suite order.
ProgressCallback = Callable[[str, float, InstanceRecord], None]


@dataclass
class HarnessConfig:
    """Batch-run configuration.

    ``jobs`` selects how many worker processes run the engine × instance
    cells (1 = the serial reference path, 0 = all cores).  ``max_clauses``
    (total clause additions per run) and ``max_propagations`` (total unit
    propagations per run) are the deterministic resource budgets threaded
    into every engine's :class:`EngineOptions`; artefact-producing configs
    use them *instead of* ``time_limit`` so regenerated tables are
    machine- and job-count-independent.  The two budgets are
    complementary: clause additions bind on the encoding-heavy failure
    mode (the ITPSEQ family re-unrolling a deep circuit), propagations on
    the search-heavy one (exact-k checks whose formulas stay small but
    hard).
    """

    engines: Sequence[str] = ("itp", "itpseq", "sitpseq", "itpseqcba", "pdr")
    time_limit: Optional[float] = 60.0  # per engine per instance, seconds
    max_bound: int = 30
    max_clauses: Optional[int] = None   # per engine per instance, clause additions
    max_propagations: Optional[int] = None  # per engine per instance, propagations
    conflict_limit: Optional[int] = None  # per SAT call, conflicts
    run_bdds: bool = True
    bdd_node_limit: int = 200_000
    bdd_time_limit: Optional[float] = 30.0
    check_expected: bool = True
    engine_options: Optional[EngineOptions] = None
    jobs: int = 1
    #: Model preprocessing for every engine cell (the BDD baseline always
    #: sees the raw circuit — its exact diameters are part of the tables).
    preprocess: bool = True
    #: Directory for span-trace event streams (``None`` = tracing off).
    #: Every engine cell writes ``<events_dir>/<instance>__<engine>.jsonl``
    #: and ``run_suite`` merges them into ``<events_dir>/suite.jsonl`` in
    #: suite × engine order, so the merged stream is identical at any job
    #: count.  The BDD baseline cells are never traced (no SAT counters).
    events_dir: Optional[str] = None

    def options(self) -> EngineOptions:
        if self.engine_options is not None:
            return self.engine_options
        return EngineOptions(max_bound=self.max_bound,
                             time_limit=self.time_limit,
                             max_clauses=self.max_clauses,
                             max_propagations=self.max_propagations,
                             conflict_limit=self.conflict_limit,
                             preprocess=self.preprocess)


# --------------------------------------------------------------------- #
# Worker-side cell execution
# --------------------------------------------------------------------- #
# One *cell* is the atom of parallel work: either one engine on one
# instance, or the BDD baseline on one instance.  Cells ship the instance
# *name* (suite factories are lambdas and deliberately never cross the
# process boundary); the worker rebuilds the model from the registry spec.

_BDD_CELL = "__bdd__"


def _cell_events_path(events_dir: str, instance_name: str,
                      engine_name: str) -> str:
    return os.path.join(events_dir, f"{instance_name}__{engine_name}.jsonl")


def _cell_tracer(config: HarnessConfig, instance_name: str, kind: str):
    """Build the per-cell tracer, or ``None`` when tracing is off.

    Tracers are always constructed cell-locally (worker side under a pool)
    — they hold open file handles and never cross a process boundary.
    """
    if config.events_dir is None or kind == _BDD_CELL:
        return None
    from ..obs.sinks import JsonlSink
    from ..obs.tracer import Tracer

    return Tracer(JsonlSink(
        _cell_events_path(config.events_dir, instance_name, kind)))


def _run_cell(spec: Tuple[str, str, HarnessConfig]):
    """Execute one (instance, engine-or-BDD) cell; module-level for pickling."""
    instance_name, kind, config = spec
    instance = get_instance(instance_name)
    model = instance.build()
    if kind == _BDD_CELL:
        return check_with_bdds(model, max_nodes=config.bdd_node_limit,
                               time_limit=config.bdd_time_limit)
    tracer = _cell_tracer(config, instance_name, kind)
    try:
        result = run_engine(kind, model, config.options(), tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    return EngineRecord.from_result(result)


class ExperimentRunner:
    """Runs engines over suite instances and collects records."""

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        self.config = config or HarnessConfig()
        unknown = [e for e in self.config.engines if e not in ENGINES]
        if unknown:
            raise KeyError(f"unknown engines in config: {unknown}")

    # ------------------------------------------------------------------ #
    # Single instance (the serial reference path)
    # ------------------------------------------------------------------ #
    def run_instance(self, instance: SuiteInstance,
                     engines: Optional[Sequence[str]] = None) -> InstanceRecord:
        """Run the configured engines (and optionally BDDs) on one instance.

        The model is built exactly once and shared by the BDD baseline and
        every engine: each :class:`~repro.core.base.UmcEngine` copies the
        AIG at construction (interpolants are materialised into the copy),
        so every engine still operates on a fresh private ``Model`` — what
        is shared here is only the immutable source circuit, and rebuilding
        it per engine was pure duplicated work.
        """
        model = instance.build()
        record = self._blank_record(instance, model)
        if self.config.run_bdds and not instance.skip_bdd:
            record.bdd = check_with_bdds(model,
                                         max_nodes=self.config.bdd_node_limit,
                                         time_limit=self.config.bdd_time_limit)
        options = self.config.options()
        for engine_name in engines or self.config.engines:
            tracer = _cell_tracer(self.config, instance.name, engine_name)
            try:
                result = run_engine(engine_name, model, options,
                                    tracer=tracer)
            finally:
                if tracer is not None:
                    tracer.close()
            record.engines[engine_name] = EngineRecord.from_result(result)
        self._check_record(record)
        return record

    def _blank_record(self, instance: SuiteInstance, model) -> InstanceRecord:
        return InstanceRecord(
            name=instance.name,
            category=instance.category,
            expected=instance.expected,
            num_inputs=model.num_inputs,
            num_latches=model.num_latches,
        )

    def _check_record(self, record: InstanceRecord) -> None:
        if self.config.check_expected and not record.verdict_consistent():
            raise RuntimeError(
                f"verdict mismatch on {record.name}: expected {record.expected}, "
                f"got { {e: r.verdict for e, r in record.engines.items()} } "
                f"(bdd={record.bdd.status if record.bdd else 'n/a'})")

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #
    def run_suite(self, instances: Optional[Iterable[SuiteInstance]] = None,
                  progress: Optional[ProgressCallback] = None,
                  jobs: Optional[int] = None) -> List[InstanceRecord]:
        """Run the whole suite; returns one record per instance.

        ``jobs`` overrides ``config.jobs`` for this call (``None`` defers
        to the config; 0 means all cores).  ``jobs=1`` is the serial
        reference loop; anything else fans the cells out over a worker
        pool and merges deterministically (identical records modulo
        measured times).  The ``progress`` callback fires once per instance
        in suite order in both modes; under a pool it reports the
        instance's *aggregate* cell time (the cells ran concurrently, so
        there is no meaningful per-instance wall-clock to report).
        """
        instances = list(instances) if instances is not None else full_suite()
        effective_jobs = self.config.jobs if jobs is None else jobs
        _log.info("suite run: %d instances x %d engines (jobs=%s)",
                  len(instances), len(self.config.engines), effective_jobs)
        if effective_jobs == 1:
            records: List[InstanceRecord] = []
            for instance in instances:
                started = time.monotonic()
                record = self.run_instance(instance)
                records.append(record)
                _log.info("instance %s done (%.2fs)", instance.name,
                          time.monotonic() - started)
                if progress is not None:
                    progress(instance.name, time.monotonic() - started, record)
        else:
            records = self._run_suite_pooled(instances, progress,
                                             effective_jobs)
        self._merge_suite_events(instances)
        return records

    def _merge_suite_events(self, instances: List[SuiteInstance]) -> None:
        """Merge per-cell event files into ``suite.jsonl``, suite order.

        Concatenation order is suite × engines — never worker completion
        order — so the merged stream at ``--jobs N`` is identical to the
        ``--jobs 1`` one.  Missing cell files (BDD cells, or engines that
        crashed before their first event) are skipped.
        """
        events_dir = self.config.events_dir
        if events_dir is None:
            return
        from ..obs.sinks import merge_segments

        paths = [_cell_events_path(events_dir, instance.name, engine_name)
                 for instance in instances
                 for engine_name in self.config.engines]
        merged = merge_segments(paths, os.path.join(events_dir, "suite.jsonl"))
        _log.info("merged %d trace events into %s", merged,
                  os.path.join(events_dir, "suite.jsonl"))

    def _run_suite_pooled(self, instances: List[SuiteInstance],
                          progress: Optional[ProgressCallback],
                          jobs: Optional[int]) -> List[InstanceRecord]:
        """Fan engine × instance cells over a pool; merge in suite order."""
        for instance in instances:
            # Workers rebuild models from the registry; fail fast (and
            # helpfully) on ad-hoc instances rather than inside the pool.
            # The registry returns fresh SuiteInstance objects, so the match
            # is by name plus the spec fields that drive the run.
            try:
                registered = get_instance(instance.name)
            except KeyError:
                registered = None
            if registered is None or (
                    registered.expected, registered.category,
                    registered.skip_bdd) != (
                    instance.expected, instance.category, instance.skip_bdd):
                raise ValueError(
                    f"parallel runs require registry suite instances "
                    f"(workers rebuild models by name); {instance.name!r} "
                    f"is not from circuits.suite — use jobs=1 for it")
        specs = []
        for instance in instances:
            if self.config.run_bdds and not instance.skip_bdd:
                specs.append((instance.name, _BDD_CELL, self.config))
            for engine_name in self.config.engines:
                specs.append((instance.name, engine_name, self.config))
        cell_results = parallel_map(_run_cell, specs, jobs=jobs)

        records: List[InstanceRecord] = []
        cursor = 0
        for instance in instances:
            # instance.build() here only feeds the PI/FF metadata columns;
            # the synthetic generators build in microseconds, so the extra
            # parent-side construction is noise next to one engine cell.
            record = self._blank_record(instance, instance.build())
            if self.config.run_bdds and not instance.skip_bdd:
                bdd = cell_results[cursor]
                assert isinstance(bdd, BddVerdict)
                record.bdd = bdd
                cursor += 1
            for engine_name in self.config.engines:
                engine_record = cell_results[cursor]
                assert isinstance(engine_record, EngineRecord)
                record.engines[engine_name] = engine_record
                cursor += 1
            self._check_record(record)
            records.append(record)
            if progress is not None:
                elapsed = sum(r.time_seconds for r in record.engines.values())
                if record.bdd is not None:
                    elapsed += record.bdd.time_forward + record.bdd.time_backward
                progress(instance.name, elapsed, record)
        return records

    def run_quick(self, progress: Optional[ProgressCallback] = None,
                  jobs: Optional[int] = None) -> List[InstanceRecord]:
        """Run the fast subset of the suite."""
        return self.run_suite(quick_suite(), progress=progress, jobs=jobs)
