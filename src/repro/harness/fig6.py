"""Fig. 6: sorted per-engine runtime curves over the whole suite.

The paper plots, for each of the four engines, the CPU time of every
instance sorted in ascending order (independently per engine, so the curves
are monotonic).  Instances an engine fails to solve within the budget are
plotted at the time limit, which is what produces the flat plateau at the
top of the figure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..circuits.suite import SuiteInstance, full_suite
from .records import InstanceRecord
from .render import ascii_curves, format_csv, format_table
from .runner import ExperimentRunner, HarnessConfig
from .table1 import TABLE1_ENGINES

__all__ = ["fig6_series", "fig6_summary", "render_fig6", "run_fig6"]


def fig6_series(records: Iterable[InstanceRecord],
                engines: Sequence[str] = TABLE1_ENGINES,
                time_limit: Optional[float] = None) -> Dict[str, List[float]]:
    """Per-engine sorted runtimes (unsolved instances count at the limit)."""
    records = list(records)
    series: Dict[str, List[float]] = {}
    for engine in engines:
        times: List[float] = []
        for record in records:
            engine_record = record.engine_record(engine)
            if engine_record is None:
                continue
            if engine_record.solved:
                times.append(engine_record.time_seconds)
            else:
                times.append(time_limit if time_limit is not None
                             else engine_record.time_seconds)
        series[engine] = sorted(times)
    return series


def fig6_summary(records: Iterable[InstanceRecord],
                 engines: Sequence[str] = TABLE1_ENGINES) -> List[List[object]]:
    """Solved counts, aggregate times and solver work per engine.

    Besides the figure's take-away (solved counts and times) the summary
    reports the cumulative clause additions and the per-call conflict peak,
    relating runtimes to the incremental-vs-monolithic encoding effort.
    """
    records = list(records)
    rows: List[List[object]] = []
    for engine in engines:
        engine_records = [r.engine_record(engine) for r in records
                          if r.engine_record(engine) is not None]
        solved = [r for r in engine_records if r.solved]
        total_time = sum(r.time_seconds for r in engine_records)
        solved_time = sum(r.time_seconds for r in solved)
        rows.append([engine, len(engine_records), len(solved),
                     round(solved_time, 3), round(total_time, 3),
                     sum(r.clauses_added for r in engine_records),
                     max((r.max_call_conflicts for r in engine_records),
                         default=0)])
    return rows


def render_fig6(records: Iterable[InstanceRecord],
                engines: Sequence[str] = TABLE1_ENGINES,
                time_limit: Optional[float] = None,
                as_csv: bool = False) -> str:
    """Render the sorted-runtime curves plus the per-engine summary."""
    records = list(records)
    series = fig6_series(records, engines, time_limit)
    longest = max((len(v) for v in series.values()), default=0)
    headers = ["rank"] + list(engines)
    rows = []
    for rank in range(longest):
        row: List[object] = [rank + 1]
        for engine in engines:
            values = series[engine]
            row.append(round(values[rank], 3) if rank < len(values) else None)
        rows.append(row)
    if as_csv:
        return format_csv(headers, rows)
    parts = [
        "Fig. 6 — run time per instance, sorted independently per engine",
        ascii_curves({k: v for k, v in series.items()}),
        format_table(headers, rows, title="sorted runtimes [s]"),
        format_table(["engine", "instances", "solved", "time(solved)",
                      "time(total)", "clauses_added", "max_call_conflicts"],
                     fig6_summary(records, engines), title="summary"),
    ]
    return "\n\n".join(parts)


def run_fig6(instances: Optional[Iterable[SuiteInstance]] = None,
             config: Optional[HarnessConfig] = None,
             progress: Optional[callable] = None) -> List[InstanceRecord]:
    """Run the Fig. 6 experiment (same batch as Table I, BDDs optional)."""
    config = config or HarnessConfig(engines=TABLE1_ENGINES, run_bdds=False)
    runner = ExperimentRunner(config)
    return runner.run_suite(instances if instances is not None else full_suite(),
                            progress=progress)
