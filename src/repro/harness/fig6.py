"""Fig. 6: sorted per-engine runtime curves over the whole suite.

The paper plots, for each of the four engines, the CPU time of every
instance sorted in ascending order (independently per engine, so the curves
are monotonic).  Instances an engine fails to solve within the budget are
plotted at the time limit, which is what produces the flat plateau at the
top of the figure.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..circuits.suite import SuiteInstance, full_suite
from .records import InstanceRecord
from .render import ascii_curves, drop_time_columns, format_csv, format_table
from .runner import ExperimentRunner, HarnessConfig
from .table1 import TABLE1_ENGINES

__all__ = ["fig6_series", "fig6_clause_series", "fig6_summary", "render_fig6",
           "run_fig6"]


def fig6_series(records: Iterable[InstanceRecord],
                engines: Sequence[str] = TABLE1_ENGINES,
                time_limit: Optional[float] = None) -> Dict[str, List[float]]:
    """Per-engine sorted runtimes (unsolved instances count at the limit)."""
    records = list(records)
    series: Dict[str, List[float]] = {}
    for engine in engines:
        times: List[float] = []
        for record in records:
            engine_record = record.engine_record(engine)
            if engine_record is None:
                continue
            if engine_record.solved:
                times.append(engine_record.time_seconds)
            else:
                times.append(time_limit if time_limit is not None
                             else engine_record.time_seconds)
        series[engine] = sorted(times)
    return series


def fig6_clause_series(records: Iterable[InstanceRecord],
                       engines: Sequence[str] = TABLE1_ENGINES) -> Dict[str, List[int]]:
    """Per-engine sorted clause-addition totals — the deterministic Fig. 6.

    Same presentation as the runtime curves (each engine sorted
    independently), but over the cumulative clause counter instead of the
    wall clock, so the curve is identical on every machine and at every
    ``jobs`` count.  Runtime and clause additions track each other closely
    on this substrate (encoding dominates), which is what makes this a
    faithful stand-in for the committed artefact.
    """
    records = list(records)
    series: Dict[str, List[int]] = {}
    for engine in engines:
        counts = [record.engine_record(engine).clauses_added
                  for record in records
                  if record.engine_record(engine) is not None]
        series[engine] = sorted(counts)
    return series


def fig6_summary(records: Iterable[InstanceRecord],
                 engines: Sequence[str] = TABLE1_ENGINES) -> List[List[object]]:
    """Solved counts, aggregate times and solver work per engine.

    Besides the figure's take-away (solved counts and times) the summary
    reports the cumulative clause additions and the per-call conflict peak,
    relating runtimes to the incremental-vs-monolithic encoding effort,
    plus the total AND gates preprocessing removed across the population
    (0 on preprocessing-off runs), the nodes the SAT-sweeping pass merged,
    the cone-gate encodings the persistent fixpoint checker served from
    its cache, the clause groups it shed as superseded (0 for engines
    without containment checks or with the lifecycle off), and the fresh
    per-bound refutation solves group-aware proof logging deleted (0 with
    ``--no-group-proof`` or for engines that never reuse the searcher's
    refutation).
    """
    records = list(records)
    rows: List[List[object]] = []
    for engine in engines:
        engine_records = [r.engine_record(engine) for r in records
                          if r.engine_record(engine) is not None]
        solved = [r for r in engine_records if r.solved]
        total_time = sum(r.time_seconds for r in engine_records)
        solved_time = sum(r.time_seconds for r in solved)
        rows.append([engine, len(engine_records), len(solved),
                     round(solved_time, 3), round(total_time, 3),
                     sum(r.clauses_added for r in engine_records),
                     max((r.max_call_conflicts for r in engine_records),
                         default=0),
                     sum(r.pre_ands_removed for r in engine_records),
                     sum(r.fraig_merges for r in engine_records),
                     sum(r.fixpoint_encodings_reused for r in engine_records),
                     sum(r.fixpoint_groups_shed for r in engine_records),
                     sum(r.proof_group_solves_saved for r in engine_records)])
    return rows


def render_fig6(records: Iterable[InstanceRecord],
                engines: Sequence[str] = TABLE1_ENGINES,
                time_limit: Optional[float] = None,
                as_csv: bool = False, deterministic: bool = False) -> str:
    """Render the sorted per-engine curves plus the per-engine summary.

    The default plots runtimes (the paper's presentation).
    ``deterministic=True`` plots the clause-addition counter instead and
    strips the time columns from the summary — the committed-artefact form
    that regenerates byte-identically on any machine at any job count.
    """
    records = list(records)
    if deterministic:
        series: Dict[str, List] = fig6_clause_series(records, engines)
        value_title = "sorted clause additions"
        curve_label = "clauses added"
        heading = ("Fig. 6 (deterministic form) — clause additions per "
                   "instance, sorted independently per engine")
    else:
        series = fig6_series(records, engines, time_limit)
        value_title = "sorted runtimes [s]"
        curve_label = "time [s]"
        heading = "Fig. 6 — run time per instance, sorted independently per engine"
    longest = max((len(v) for v in series.values()), default=0)
    headers = ["rank"] + list(engines)
    rows = []
    for rank in range(longest):
        row: List[object] = [rank + 1]
        for engine in engines:
            values = series[engine]
            if rank >= len(values):
                row.append(None)
            else:
                value = values[rank]
                row.append(round(value, 3) if isinstance(value, float) else value)
        rows.append(row)
    if as_csv:
        return format_csv(headers, rows)
    summary_headers = ["engine", "instances", "solved", "time(solved)",
                       "time(total)", "clauses_added", "max_call_conflicts",
                       "pre_ands_removed", "fraig_merges",
                       "fixpoint_reused", "fixpoint_shed",
                       "group_solves_saved"]
    summary_rows = fig6_summary(records, engines)
    if deterministic:
        summary_headers, summary_rows = drop_time_columns(summary_headers,
                                                          summary_rows)
    parts = [
        heading,
        ascii_curves({k: [float(v) for v in vals] for k, vals in series.items()},
                     y_label=curve_label),
        format_table(headers, rows, title=value_title),
        format_table(summary_headers, summary_rows, title="summary"),
    ]
    return "\n\n".join(parts)


def run_fig6(instances: Optional[Iterable[SuiteInstance]] = None,
             config: Optional[HarnessConfig] = None,
             progress: Optional[Callable[[str, float, InstanceRecord], None]] = None
             ) -> List[InstanceRecord]:
    """Run the Fig. 6 experiment (same batch as Table I, BDDs optional)."""
    config = config or HarnessConfig(engines=TABLE1_ENGINES, run_bdds=False)
    runner = ExperimentRunner(config)
    return runner.run_suite(instances if instances is not None else full_suite(),
                            progress=progress)
