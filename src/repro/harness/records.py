"""Result records produced by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.checker import BddVerdict
from ..circuits.suite import SuiteInstance
from ..core.result import VerificationResult

__all__ = ["EngineRecord", "InstanceRecord"]


@dataclass
class EngineRecord:
    """One engine's outcome on one instance (one Table I cell group).

    ``clauses_added`` / ``conflicts`` are cumulative over the whole run;
    ``max_call_conflicts`` is the per-call peak — both views of the solver
    work are recorded so the Fig. 6/7 artefacts can relate runtimes to the
    incremental-vs-monolithic encoding effort.  ``blocked_cubes`` /
    ``clauses_pushed`` describe the PDR engine's frame effort (0 for the
    interpolation engines), letting Table-I-style runs compare the two
    prover families on solver counters rather than wall clock alone.
    The ``pre_*`` columns record what the preprocessing pipeline removed
    before the engine encoded anything (latches / AND gates of the model,
    plus the clauses the CNF pass eliminated from containment checks);
    all zero when the run had preprocessing disabled; the ``fraig_*``
    columns expose the SAT-sweeping pass's effort (classes examined,
    nodes merged, miter UNSAT proofs).  The interpolant
    lifecycle columns (``proof_nodes_trimmed`` / ``itp_ands_compacted`` /
    ``fixpoint_encodings_reused`` / ``fixpoint_groups_shed``) record what
    proof trimming, cone compaction and the persistent containment
    checker saved or retracted; zero for the non-interpolation engines or
    with the lifecycle toggles off.  The ``proof_group_*`` columns count
    what group-aware proof logging did: per-bound fresh refutation solves
    it deleted, activation-stripped chains, and fallbacks to the fresh
    path (zero with ``--no-group-proof`` or for engines that never reuse
    the searcher's refutation).
    """

    engine: str
    verdict: str
    time_seconds: float
    k_fp: Optional[int]
    j_fp: Optional[int]
    sat_calls: int = 0
    itp_nodes: int = 0
    refinements: int = 0
    clauses_added: int = 0
    conflicts: int = 0
    propagations: int = 0
    max_call_conflicts: int = 0
    blocked_cubes: int = 0
    clauses_pushed: int = 0
    pre_latches_removed: int = 0
    pre_ands_removed: int = 0
    pre_cnf_clauses_eliminated: int = 0
    fraig_classes: int = 0
    fraig_merges: int = 0
    fraig_sat_confirms: int = 0
    proof_nodes_trimmed: int = 0
    itp_ands_compacted: int = 0
    fixpoint_encodings_reused: int = 0
    fixpoint_groups_shed: int = 0
    proof_group_solves_saved: int = 0
    proof_chains_stripped: int = 0
    proof_group_fallbacks: int = 0

    @staticmethod
    def from_result(result: VerificationResult) -> "EngineRecord":
        return EngineRecord(
            engine=result.engine,
            verdict=result.verdict.value,
            time_seconds=result.time_seconds,
            k_fp=result.k_fp,
            j_fp=result.j_fp,
            sat_calls=result.stats.sat_calls,
            itp_nodes=result.stats.itp_nodes,
            refinements=result.stats.refinements,
            clauses_added=result.stats.clauses_added,
            conflicts=result.stats.conflicts,
            propagations=result.stats.propagations,
            max_call_conflicts=result.stats.max_call_conflicts,
            blocked_cubes=result.stats.blocked_cubes,
            clauses_pushed=result.stats.clauses_pushed,
            pre_latches_removed=result.stats.pre_latches_removed,
            pre_ands_removed=result.stats.pre_ands_removed,
            pre_cnf_clauses_eliminated=result.stats.pre_cnf_clauses_eliminated,
            fraig_classes=result.stats.fraig_classes,
            fraig_merges=result.stats.fraig_merges,
            fraig_sat_confirms=result.stats.fraig_sat_confirms,
            proof_nodes_trimmed=result.stats.proof_nodes_trimmed,
            itp_ands_compacted=result.stats.itp_ands_compacted,
            fixpoint_encodings_reused=result.stats.fixpoint_encodings_reused,
            fixpoint_groups_shed=result.stats.fixpoint_groups_shed,
            proof_group_solves_saved=result.stats.proof_group_solves_saved,
            proof_chains_stripped=result.stats.proof_chains_stripped,
            proof_group_fallbacks=result.stats.proof_group_fallbacks,
        )

    @property
    def solved(self) -> bool:
        return self.verdict in ("pass", "fail")

    def as_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "verdict": self.verdict,
            "time": round(self.time_seconds, 3),
            "k_fp": self.k_fp,
            "j_fp": self.j_fp,
            "sat_calls": self.sat_calls,
            "itp_nodes": self.itp_nodes,
            "refinements": self.refinements,
            "clauses_added": self.clauses_added,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "max_call_conflicts": self.max_call_conflicts,
            "blocked_cubes": self.blocked_cubes,
            "clauses_pushed": self.clauses_pushed,
            "pre_latches_removed": self.pre_latches_removed,
            "pre_ands_removed": self.pre_ands_removed,
            "pre_cnf_clauses_eliminated": self.pre_cnf_clauses_eliminated,
            "fraig_classes": self.fraig_classes,
            "fraig_merges": self.fraig_merges,
            "fraig_sat_confirms": self.fraig_sat_confirms,
            "proof_nodes_trimmed": self.proof_nodes_trimmed,
            "itp_ands_compacted": self.itp_ands_compacted,
            "fixpoint_encodings_reused": self.fixpoint_encodings_reused,
            "fixpoint_groups_shed": self.fixpoint_groups_shed,
            "proof_group_solves_saved": self.proof_group_solves_saved,
            "proof_chains_stripped": self.proof_chains_stripped,
            "proof_group_fallbacks": self.proof_group_fallbacks,
        }

    def as_deterministic_dict(self) -> Dict[str, object]:
        """Everything in :meth:`as_dict` that reruns reproduce exactly.

        Drops the measured wall-clock time — the one field that differs
        between a ``jobs=1`` and a ``jobs=N`` run (or between two machines).
        Equality of these projections is the harness's definition of
        "bit-identical records", asserted by ``tests/parallel/`` and by the
        CI staleness gate over the committed artefacts.
        """
        row = self.as_dict()
        del row["time"]
        return row


@dataclass
class InstanceRecord:
    """All results for one benchmark instance (one Table I row)."""

    name: str
    category: str
    expected: str
    num_inputs: int
    num_latches: int
    bdd: Optional[BddVerdict] = None
    engines: Dict[str, EngineRecord] = field(default_factory=dict)

    def engine_record(self, engine: str) -> Optional[EngineRecord]:
        return self.engines.get(engine)

    def verdict_consistent(self) -> bool:
        """All solved answers (engines and BDD) must agree with the expected one."""
        answers = {rec.verdict for rec in self.engines.values() if rec.solved}
        if self.bdd is not None and self.bdd.status in ("pass", "fail"):
            answers.add(self.bdd.status)
        return answers <= {self.expected}

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "category": self.category,
            "expected": self.expected,
            "PI": self.num_inputs,
            "FF": self.num_latches,
        }
        if self.bdd is not None:
            row.update({
                "bdd_status": self.bdd.status,
                "d_F": self.bdd.d_f,
                "time_F": round(self.bdd.time_forward, 3),
                "d_B": self.bdd.d_b,
                "time_B": round(self.bdd.time_backward, 3),
            })
        for engine, record in self.engines.items():
            row[f"{engine}_time"] = round(record.time_seconds, 3)
            row[f"{engine}_verdict"] = record.verdict
            row[f"{engine}_k_fp"] = record.k_fp
            row[f"{engine}_j_fp"] = record.j_fp
            row[f"{engine}_clauses"] = record.clauses_added
            row[f"{engine}_max_call_conflicts"] = record.max_call_conflicts
        return row

    def as_deterministic_dict(self) -> Dict[str, object]:
        """The machine- and job-count-independent projection of the row.

        BDD diameters and statuses stay (they are exact); every measured
        time goes.  Two suite runs — serial vs. pooled, laptop vs. CI —
        must produce equal lists of these dicts or something real broke.
        """
        row: Dict[str, object] = {
            "name": self.name,
            "category": self.category,
            "expected": self.expected,
            "PI": self.num_inputs,
            "FF": self.num_latches,
        }
        if self.bdd is not None:
            row.update({"bdd_status": self.bdd.status,
                        "d_F": self.bdd.d_f, "d_B": self.bdd.d_b})
        for engine, record in self.engines.items():
            for key, value in record.as_deterministic_dict().items():
                if key != "engine":
                    row[f"{engine}_{key}"] = value
        return row
