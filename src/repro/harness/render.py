"""Plain-text rendering helpers for tables, curves and scatter plots.

The paper's figures were produced with gnuplot; the reproduction renders
the same data as aligned text tables, CSV blocks and coarse ASCII plots so
every experiment's output can be archived directly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_csv", "ascii_scatter", "ascii_curves",
           "drop_time_columns"]


def drop_time_columns(headers: Sequence[str],
                      rows: Iterable[Sequence[object]]) -> Tuple[List[str], List[List[object]]]:
    """Project a table onto its machine-independent columns.

    Any column whose header mentions ``time`` (``Time_F``, ``itp.Time``,
    ``sat_time``, …) is measured wall clock and differs between two runs of
    the very same code; everything else — verdicts, depths, solver counters
    — is deterministic.  The committed ``benchmarks/results/`` artefacts are
    rendered through this projection so the CI staleness gate
    (``git diff --exit-code``) can compare regenerated tables byte for
    byte; the full tables including times go to the untracked
    ``results/timing/`` directory instead.
    """
    keep = [i for i, h in enumerate(headers) if "time" not in h.lower()]
    kept_headers = [headers[i] for i in keep]
    kept_rows = [[row[i] for i in keep] for row in rows]
    return kept_headers, kept_rows


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned, pipe-separated text table."""
    materialised = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialised:
        lines.append(" | ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render comma-separated values (no quoting needed for our data)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(_cell(value) for value in row))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_scatter(points: Sequence[Tuple[float, float]], width: int = 50,
                  height: int = 20, x_label: str = "x", y_label: str = "y") -> str:
    """A coarse ASCII scatter plot with the y=x diagonal marked.

    Used for the Fig. 7 style exact-k vs assume-k comparison: points below
    the diagonal mean the y-axis configuration is faster.
    """
    if not points:
        return "(no points)"
    max_value = max(max(x for x, _ in points), max(y for _, y in points), 1e-9)
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for step in range(min(width, height)):
        col = int(step * (width - 1) / max(1, min(width, height) - 1))
        row = int(step * (height - 1) / max(1, min(width, height) - 1))
        grid[height - 1 - row][col] = "."
    for x, y in points:
        col = min(width - 1, int(x / max_value * (width - 1)))
        row = min(height - 1, int(y / max_value * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [f"{y_label} (max {max_value:.2f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} (max {max_value:.2f});  '.' marks y = x")
    return "\n".join(lines)


def ascii_curves(series: Dict[str, Sequence[float]], width: int = 60,
                 height: int = 16, y_label: str = "time [s]") -> str:
    """Overlay several monotonic curves (Fig. 6 style) as ASCII art.

    Each series is plotted against its own index (instances solved), which
    matches the paper's presentation where every engine's runtimes are
    sorted independently.
    """
    if not series:
        return "(no series)"
    max_y = max((max(values) for values in series.values() if values), default=1.0)
    max_x = max((len(values) for values in series.values()), default=1)
    grid = [[" " for _ in range(width)] for _ in range(height)]
    markers = "ox+#*%@"
    legend = []
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        for i, value in enumerate(values):
            col = min(width - 1, int(i / max(1, max_x - 1) * (width - 1)))
            row = min(height - 1, int(value / max(max_y, 1e-9) * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [f"{y_label} (max {max_y:.2f})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(" instances (sorted per engine)")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
