"""A convenience BDD-based invariant checker.

Wraps :class:`~repro.bdd.reach.BddReachability` behind the same
result vocabulary the SAT-based engines use, so the harness and the
test-suite can use BDD reachability as a ground-truth oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..aig.model import Model
from .reach import BddReachability, DiameterReport

__all__ = ["BddVerdict", "check_with_bdds"]


@dataclass
class BddVerdict:
    """Exact verification verdict plus diameter information."""

    status: str                      # "pass", "fail" or "overflow"
    d_f: Optional[int]
    d_b: Optional[int]
    failure_depth: Optional[int]
    num_reachable_states: Optional[int]
    time_forward: float
    time_backward: float
    time_seconds: float

    @property
    def is_pass(self) -> bool:
        return self.status == "pass"

    @property
    def is_fail(self) -> bool:
        return self.status == "fail"


def check_with_bdds(model: Model, max_nodes: Optional[int] = 500_000,
                    time_limit: Optional[float] = None) -> BddVerdict:
    """Run exact forward + backward reachability; return the combined verdict."""
    started = time.monotonic()
    try:
        engine = BddReachability(model, max_nodes=max_nodes, time_limit=time_limit)
        report: DiameterReport = engine.diameters()
    except Exception:
        elapsed = time.monotonic() - started
        return BddVerdict(status="overflow", d_f=None, d_b=None, failure_depth=None,
                          num_reachable_states=None, time_forward=elapsed,
                          time_backward=0.0, time_seconds=elapsed)
    failure_depth = report.forward.failure_depth
    if failure_depth is None:
        failure_depth = report.backward.failure_depth
    return BddVerdict(
        status=report.verdict,
        d_f=report.d_f if report.forward.status != "overflow" else None,
        d_b=report.d_b if report.backward.status != "overflow" else None,
        failure_depth=failure_depth,
        num_reachable_states=report.forward.num_states,
        time_forward=report.forward.time_seconds,
        time_backward=report.backward.time_seconds,
        time_seconds=time.monotonic() - started,
    )
