"""BDD engine: ROBDD manager, exact reachability, circuit diameters."""

from .bdd import BddError, BddManager
from .checker import BddVerdict, check_with_bdds
from .reach import BddReachability, DiameterReport, ReachabilityResult

__all__ = [
    "BddError",
    "BddManager",
    "BddVerdict",
    "check_with_bdds",
    "BddReachability",
    "DiameterReport",
    "ReachabilityResult",
]
