"""BDD-based reachability, circuit diameters and exact verification.

This module supplies the *BDDs* columns of Table I:

* ``d_F`` — the forward diameter referred to the initial states: the number
  of image steps after which no new state is discovered (the largest
  shortest distance from S₀ to any reachable state);
* ``d_B`` — the backward diameter referred to the target (bad) states,
  computed with pre-images from ¬p;
* the exact PASS/FAIL verdict, used by the harness and the test-suite as
  the ground truth the SAT-based engines are compared against.

Transition functions, initial states and the bad predicate are translated
from the AIG into BDDs over an interleaved current/next variable order.
Image computation uses the monolithic transition relation with an
``and_exists`` relational product — perfectly adequate for the benchmark
sizes used in this reproduction (tens of latches).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aig.aig import Aig, lit_sign, lit_var
from ..aig.model import Model
from .bdd import BddError, BddManager

__all__ = ["BddReachability", "ReachabilityResult", "DiameterReport"]


@dataclass
class ReachabilityResult:
    """Outcome of one fixed-point traversal."""

    #: "pass", "fail" or "overflow"
    status: str
    #: Number of image steps until the frontier became empty.
    diameter: Optional[int] = None
    #: Step at which a bad state was first reached (for failures).
    failure_depth: Optional[int] = None
    #: Number of reachable states (forward traversals only).
    num_states: Optional[int] = None
    #: Peak BDD node count observed during the traversal.
    peak_nodes: int = 0
    time_seconds: float = 0.0


@dataclass
class DiameterReport:
    """Forward + backward traversal summary (one Table I 'BDDs' cell group)."""

    forward: ReachabilityResult
    backward: ReachabilityResult

    @property
    def d_f(self) -> Optional[int]:
        return self.forward.diameter

    @property
    def d_b(self) -> Optional[int]:
        return self.backward.diameter

    @property
    def verdict(self) -> str:
        if self.forward.status == "fail" or self.backward.status == "fail":
            return "fail"
        if self.forward.status == "pass" or self.backward.status == "pass":
            return "pass"
        return "overflow"


class BddReachability:
    """Exact symbolic reachability for a :class:`Model`."""

    def __init__(self, model: Model, max_nodes: Optional[int] = 500_000,
                 time_limit: Optional[float] = None) -> None:
        self.model = model
        self.manager = BddManager(max_nodes=max_nodes)
        self.time_limit = time_limit
        self._build_variables()
        self._build_functions()

    # ------------------------------------------------------------------ #
    # Circuit translation
    # ------------------------------------------------------------------ #
    def _build_variables(self) -> None:
        manager = self.manager
        self.current_level: Dict[int, int] = {}
        self.next_level: Dict[int, int] = {}
        self.input_level: Dict[int, int] = {}
        # Interleave current/next state variables, then the inputs.
        for latch in self.model.latches:
            current = manager.new_var()
            nxt = manager.new_var()
            self.current_level[latch.var] = manager.level_of(current)
            self.next_level[latch.var] = manager.level_of(nxt)
        for input_var in self.model.input_vars:
            node = manager.new_var()
            self.input_level[input_var] = manager.level_of(node)

    def _node_for_leaf(self, aig_var: int) -> int:
        manager = self.manager
        if aig_var in self.current_level:
            return manager.var_bdd(self.current_level[aig_var])
        if aig_var in self.input_level:
            return manager.var_bdd(self.input_level[aig_var])
        raise BddError(f"AIG variable {aig_var} is not a latch or input")

    def _bdd_of_literal(self, lit: int, cache: Dict[int, int]) -> int:
        manager = self.manager
        aig = self.model.aig
        var = lit_var(lit)
        if var == 0:
            node = manager.FALSE
        elif var in cache:
            node = cache[var]
        else:
            # Iterative topological construction over the AND cone.
            order = [v for v in aig.fanin_cone([lit]) if aig.is_and(v)]
            for and_var in order:
                if and_var in cache:
                    continue
                gate = aig.and_gate(and_var)
                left = self._operand(gate.left, cache)
                right = self._operand(gate.right, cache)
                cache[and_var] = manager.bdd_and(left, right)
            node = cache.get(var) if aig.is_and(var) else self._node_for_leaf(var)
            if node is None:  # pragma: no cover - defensive
                raise BddError(f"failed to build BDD for AIG variable {var}")
            cache[var] = node
        return manager.bdd_not(node) if lit_sign(lit) else node

    def _operand(self, lit: int, cache: Dict[int, int]) -> int:
        manager = self.manager
        var = lit_var(lit)
        if var == 0:
            node = manager.FALSE
        elif var in cache:
            node = cache[var]
        else:
            node = self._node_for_leaf(var)
            cache[var] = node
        return manager.bdd_not(node) if lit_sign(lit) else node

    def _build_functions(self) -> None:
        manager = self.manager
        cache: Dict[int, int] = {}
        # Next-state functions and the monolithic transition relation.
        relation = manager.TRUE
        for latch in self.model.latches:
            function = self._bdd_of_literal(latch.next, cache)
            next_var = manager.var_bdd(self.next_level[latch.var])
            equivalence = manager.bdd_not(manager.bdd_xor(next_var, function))
            relation = manager.bdd_and(relation, equivalence)
        # Invariant constraints restrict the transition relation's source states.
        for constraint in self.model.constraints:
            relation = manager.bdd_and(relation, self._bdd_of_literal(constraint, cache))
        self.transition_relation = relation
        self.bad_bdd = self._bdd_of_literal(self.model.bad_literal, cache)
        for constraint in self.model.constraints:
            self.bad_bdd = manager.bdd_and(self.bad_bdd,
                                           self._bdd_of_literal(constraint, cache))
        # Initial states.
        init = manager.TRUE
        for latch in self.model.latches:
            if latch.init is None:
                continue
            var_bdd = manager.var_bdd(self.current_level[latch.var])
            init = manager.bdd_and(init,
                                   var_bdd if latch.init else manager.bdd_not(var_bdd))
        self.initial_bdd = init
        # Bad states as a predicate over current state only (inputs abstracted
        # existentially: a state is bad if *some* input exposes the failure).
        self.bad_states = manager.exists(self.input_level.values(), self.bad_bdd)

    # ------------------------------------------------------------------ #
    # Image operators
    # ------------------------------------------------------------------ #
    def image(self, states: int) -> int:
        """Post-image: states reachable in one step from ``states``."""
        manager = self.manager
        quantified = list(self.current_level.values()) + list(self.input_level.values())
        product = manager.and_exists(states, self.transition_relation, quantified)
        renaming = {self.next_level[v]: self.current_level[v]
                    for v in self.current_level}
        return manager.rename(product, renaming)

    def pre_image(self, states: int) -> int:
        """Pre-image: states that can reach ``states`` in one step."""
        manager = self.manager
        renamed = manager.rename(
            states, {self.current_level[v]: self.next_level[v]
                     for v in self.current_level})
        quantified = list(self.next_level.values()) + list(self.input_level.values())
        return manager.and_exists(renamed, self.transition_relation, quantified)

    # ------------------------------------------------------------------ #
    # Traversals
    # ------------------------------------------------------------------ #
    def forward_reachability(self) -> ReachabilityResult:
        """Forward fixed point from S₀, checking the property along the way."""
        return self._traverse(start=self.initial_bdd, target=self.bad_states,
                              step=self.image, count_states=True)

    def backward_reachability(self) -> ReachabilityResult:
        """Backward fixed point from the bad states, checking S₀ along the way."""
        return self._traverse(start=self.bad_states, target=self.initial_bdd,
                              step=self.pre_image, count_states=False)

    def _traverse(self, start: int, target: int, step, count_states: bool
                  ) -> ReachabilityResult:
        manager = self.manager
        began = time.monotonic()
        result = ReachabilityResult(status="pass")
        try:
            reached = start
            frontier = start
            depth = 0
            if manager.bdd_and(start, target) != manager.FALSE:
                result.status = "fail"
                result.failure_depth = 0
            else:
                while frontier != manager.FALSE:
                    if self.time_limit is not None and \
                            time.monotonic() - began > self.time_limit:
                        result.status = "overflow"
                        break
                    new_states = step(frontier)
                    frontier = manager.bdd_and(new_states, manager.bdd_not(reached))
                    if frontier == manager.FALSE:
                        break
                    depth += 1
                    reached = manager.bdd_or(reached, frontier)
                    result.peak_nodes = max(result.peak_nodes, manager.num_nodes)
                    if manager.bdd_and(frontier, target) != manager.FALSE:
                        result.status = "fail"
                        result.failure_depth = depth
                        break
                result.diameter = depth
            if count_states and result.status != "overflow":
                # ``reached`` depends on current-state levels only, so the count
                # over all manager variables over-counts by a factor of 2 for
                # every other variable.
                total = manager.count_solutions(reached)
                result.num_states = total >> (manager.num_vars
                                              - len(self.current_level))
        except BddError:
            result.status = "overflow"
        result.time_seconds = time.monotonic() - began
        result.peak_nodes = max(result.peak_nodes, manager.num_nodes)
        return result

    def diameters(self) -> DiameterReport:
        """Run both traversals and package the Table I 'BDDs' columns."""
        return DiameterReport(forward=self.forward_reachability(),
                              backward=self.backward_reachability())
