"""A reduced ordered binary decision diagram (ROBDD) manager.

The BDD engine provides the exact-reachability baseline of Table I: the
forward and backward circuit diameters (d_F, d_B) and a BDD-based
verification verdict, against which the SAT-based engines' convergence
depths are compared.

The implementation is a classical unique-table / computed-table ROBDD
without complemented edges:

* nodes are integers; ``0`` and ``1`` are the terminals;
* every internal node is a triple ``(level, low, high)`` interned in the
  unique table, with ``low`` taken when the variable is false;
* all Boolean operations are derived from ``ite`` with memoisation;
* existential/universal quantification and leaf substitution (compose) are
  provided for image computation.

Variable *levels* are the BDD ordering; the manager hands out levels in
creation order, which the reachability front-end arranges as an
interleaving of current-state and next-state variables (a standard
heuristic that keeps transition-relation BDDs small for the circuit sizes
used here).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["BddManager", "BddError"]


class BddError(RuntimeError):
    """Raised on invalid BDD operations."""


class BddManager:
    """Owner of the unique table; all nodes live inside one manager."""

    FALSE = 0
    TRUE = 1

    def __init__(self, max_nodes: Optional[int] = None) -> None:
        #: node id -> (level, low, high); terminals occupy ids 0 and 1.
        self._nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._quant_cache: Dict[Tuple[int, frozenset, bool], int] = {}
        self._compose_cache: Dict[Tuple[int, int], int] = {}
        self._num_vars = 0
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------ #
    # Variables and raw nodes
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        """Create a new variable (at the bottom of the order); return its BDD."""
        self._num_vars += 1
        return self._mk(self._num_vars - 1, self.FALSE, self.TRUE)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def var_bdd(self, level: int) -> int:
        """Return the BDD of the variable at ``level``."""
        if not 0 <= level < self._num_vars:
            raise BddError(f"unknown BDD variable level {level}")
        return self._mk(level, self.FALSE, self.TRUE)

    def level_of(self, node: int) -> int:
        return self._nodes[node][0]

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self.max_nodes is not None and len(self._nodes) >= self.max_nodes:
            raise BddError(f"BDD node limit exceeded ({self.max_nodes})")
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------ #
    # Core ITE and derived operators
    # ------------------------------------------------------------------ #
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._top_level(f), self._top_level(g), self._top_level(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def _top_level(self, node: int) -> int:
        level = self._nodes[node][0]
        return level if level >= 0 else self._num_vars + 1

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    def bdd_not(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def bdd_and(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def bdd_or(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def bdd_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.bdd_not(g), g)

    def bdd_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    def and_many(self, nodes: Iterable[int]) -> int:
        out = self.TRUE
        for node in nodes:
            out = self.bdd_and(out, node)
        return out

    def or_many(self, nodes: Iterable[int]) -> int:
        out = self.FALSE
        for node in nodes:
            out = self.bdd_or(out, node)
        return out

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_false(self, f: int) -> bool:
        return f == self.FALSE

    def is_true(self, f: int) -> bool:
        return f == self.TRUE

    def evaluate(self, f: int, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under a level -> value assignment (missing levels = False)."""
        node = f
        while node > 1:
            level, low, high = self._nodes[node]
            node = high if assignment.get(level, False) else low
        return node == self.TRUE

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(seen)

    def count_solutions(self, f: int, num_vars: Optional[int] = None) -> int:
        """Count satisfying assignments over ``num_vars`` variables."""
        total_vars = num_vars if num_vars is not None else self._num_vars
        cache: Dict[int, int] = {}

        def count(node: int) -> Tuple[int, int]:
            """Return (count, level) where count is over vars below `level`."""
            if node == self.FALSE:
                return 0, total_vars
            if node == self.TRUE:
                return 1, total_vars
            if node in cache:
                return cache[node], self._nodes[node][0]
            level, low, high = self._nodes[node]
            low_count, low_level = count(low)
            high_count, high_level = count(high)
            value = (low_count << (low_level - level - 1)) + \
                    (high_count << (high_level - level - 1))
            cache[node] = value
            return value, level

        value, level = count(f)
        return value << level

    def pick_assignment(self, f: int) -> Optional[Dict[int, bool]]:
        """Return one satisfying level->value assignment, or ``None``."""
        if f == self.FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while node > 1:
            level, low, high = self._nodes[node]
            if low != self.FALSE:
                assignment[level] = False
                node = low
            else:
                assignment[level] = True
                node = high
        return assignment

    # ------------------------------------------------------------------ #
    # Quantification and substitution
    # ------------------------------------------------------------------ #
    def exists(self, levels: Iterable[int], f: int) -> int:
        """Existential quantification over a set of variable levels."""
        return self._quantify(f, frozenset(levels), existential=True)

    def forall(self, levels: Iterable[int], f: int) -> int:
        """Universal quantification over a set of variable levels."""
        return self._quantify(f, frozenset(levels), existential=False)

    def _quantify(self, f: int, levels: frozenset, existential: bool) -> int:
        if f <= 1 or not levels:
            return f
        key = (f, levels, existential)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        level, low, high = self._nodes[f]
        sub_low = self._quantify(low, levels, existential)
        sub_high = self._quantify(high, levels, existential)
        if level in levels:
            result = (self.bdd_or(sub_low, sub_high) if existential
                      else self.bdd_and(sub_low, sub_high))
        else:
            result = self._mk(level, sub_low, sub_high)
        self._quant_cache[key] = result
        return result

    def compose(self, f: int, substitution: Mapping[int, int]) -> int:
        """Simultaneously substitute variables (by level) with BDDs."""
        if not substitution:
            return f
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            if node in cache:
                return cache[node]
            level, low, high = self._nodes[node]
            new_low = walk(low)
            new_high = walk(high)
            replacement = substitution.get(level)
            if replacement is None:
                replacement = self.var_bdd(level)
            result = self.ite(replacement, new_high, new_low)
            cache[node] = result
            return result

        return walk(f)

    def rename(self, f: int, mapping: Mapping[int, int]) -> int:
        """Rename variables level -> level (a special case of compose)."""
        return self.compose(f, {old: self.var_bdd(new) for old, new in mapping.items()})

    # ------------------------------------------------------------------ #
    # Relational product (the image-computation workhorse)
    # ------------------------------------------------------------------ #
    def and_exists(self, f: int, g: int, levels: Iterable[int]) -> int:
        """Compute ∃ levels. (f ∧ g) without building the full conjunction."""
        levels_set = frozenset(levels)
        cache: Dict[Tuple[int, int], int] = {}

        def walk(a: int, b: int) -> int:
            if a == self.FALSE or b == self.FALSE:
                return self.FALSE
            if a == self.TRUE and b == self.TRUE:
                return self.TRUE
            key = (a, b) if a <= b else (b, a)
            if key in cache:
                return cache[key]
            level = min(self._top_level(a), self._top_level(b))
            a0, a1 = self._cofactors(a, level)
            b0, b1 = self._cofactors(b, level)
            low = walk(a0, b0)
            if level in levels_set and low == self.TRUE:
                result = self.TRUE
            else:
                high = walk(a1, b1)
                if level in levels_set:
                    result = self.bdd_or(low, high)
                else:
                    result = self._mk(level, low, high)
            cache[key] = result
            return result

        return walk(f, g)
